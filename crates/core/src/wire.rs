//! JSON encode/decode for the query surface: [`QuerySpec`], [`RunReport`],
//! [`EngineStats`], [`ApiError`] and [`Biplex`].
//!
//! This is the serialization half of the "one query type everywhere"
//! contract: the CLI, the `mbpe-serve` wire protocol and the benches all
//! speak these exact shapes. The format is deliberately boring JSON with
//! three rules:
//!
//! * **Enums are stable strings** — the same codes as `Display`/`FromStr`
//!   (`"itraversal"`, `"steal"`, `"limit-reached"`, …), so clients match on
//!   codes, never on prose.
//! * **Defaults may be omitted.** [`QuerySpec::from_json`] starts from
//!   [`QuerySpec::default`] and applies the keys present; unknown keys are
//!   rejected (typo protection on a network surface).
//! * **Durations are `{secs, nanos}` integer pairs** — exact round-trips,
//!   no float rounding.

use std::time::Duration;

use crate::api::{ApiError, EngineStats, QuerySpec, ReducedGraph, RunReport};
use crate::asym::{AsymStats, KPair};
use crate::biplex::Biplex;
use crate::enum_almost_sat::AlmostSatStats;
use crate::json::{obj, s, u, Json, JsonError};
use crate::parallel::ParallelStats;
use crate::stats::TraversalStats;

fn parse_code<T: std::str::FromStr<Err = String>>(v: &Json, what: &str) -> Result<T, JsonError> {
    v.as_str(what)?.parse::<T>().map_err(JsonError)
}

fn duration_json(d: Duration) -> Json {
    obj(vec![("secs", u(d.as_secs())), ("nanos", u(u64::from(d.subsec_nanos())))])
}

fn duration_from(v: &Json, what: &str) -> Result<Duration, JsonError> {
    // Insist on the `{secs, nanos}` object shape: `get` on a non-object
    // returns `None` for every key, which would silently decode e.g. a bare
    // float as a zero duration.
    v.as_obj(what)?;
    let secs = v.get("secs").map(|j| j.as_u64("secs")).transpose()?.unwrap_or(0);
    let nanos = v.get("nanos").map(|j| j.as_u64("nanos")).transpose()?.unwrap_or(0);
    let nanos = u32::try_from(nanos)
        .ok()
        .filter(|n| *n < 1_000_000_000)
        .ok_or_else(|| JsonError(format!("{what}: nanos out of range")))?;
    Ok(Duration::new(secs, nanos))
}

/// The keys [`QuerySpec::from_json`] accepts (everything else is a typo).
const SPEC_KEYS: &[&str] = &[
    "k",
    "k_pair",
    "algorithm",
    "engine",
    "order",
    "enum_kind",
    "emit",
    "anchor",
    "theta_left",
    "theta_right",
    "core_reduction",
    "threads",
    "seen_segments",
    "steal_adaptive",
    "limit",
    "time_budget",
    "stream_buffer",
    "kernel",
];

impl QuerySpec {
    /// Encodes the spec as a [`Json`] object. Fields at their default value
    /// are omitted, so a default spec encodes as `{}` and wire messages stay
    /// small.
    pub fn to_json(&self) -> Json {
        let d = QuerySpec::default();
        let mut pairs: Vec<(&str, Json)> = Vec::new();
        if self.k != d.k {
            pairs.push(("k", u(self.k as u64)));
        }
        if let Some(kp) = self.k_pair {
            pairs.push((
                "k_pair",
                obj(vec![("left", u(kp.left as u64)), ("right", u(kp.right as u64))]),
            ));
        }
        if self.algorithm != d.algorithm {
            pairs.push(("algorithm", s(self.algorithm.to_string())));
        }
        if self.engine != d.engine {
            pairs.push(("engine", s(self.engine.to_string())));
        }
        if self.order != d.order {
            pairs.push(("order", s(self.order.to_string())));
        }
        if self.enum_kind != d.enum_kind {
            pairs.push(("enum_kind", s(self.enum_kind.to_string())));
        }
        if self.emit_mode != d.emit_mode {
            pairs.push(("emit", s(self.emit_mode.to_string())));
        }
        if let Some(anchor) = self.anchor {
            pairs.push(("anchor", s(anchor.to_string())));
        }
        if self.theta_left != d.theta_left {
            pairs.push(("theta_left", u(self.theta_left as u64)));
        }
        if self.theta_right != d.theta_right {
            pairs.push(("theta_right", u(self.theta_right as u64)));
        }
        if let Some(enabled) = self.core_reduction {
            pairs.push(("core_reduction", Json::Bool(enabled)));
        }
        if self.threads != d.threads {
            pairs.push(("threads", u(self.threads as u64)));
        }
        if self.seen_segments != d.seen_segments {
            pairs.push(("seen_segments", u(self.seen_segments as u64)));
        }
        if self.steal_adaptive != d.steal_adaptive {
            pairs.push(("steal_adaptive", Json::Bool(self.steal_adaptive)));
        }
        if let Some(limit) = self.limit {
            pairs.push(("limit", u(limit)));
        }
        if let Some(budget) = self.time_budget {
            pairs.push(("time_budget", duration_json(budget)));
        }
        if self.stream_buffer != d.stream_buffer {
            pairs.push(("stream_buffer", u(self.stream_buffer as u64)));
        }
        if self.kernel != d.kernel {
            pairs.push(("kernel", s(self.kernel.to_string())));
        }
        obj(pairs)
    }

    /// Decodes a spec from the [`QuerySpec::to_json`] shape. Missing keys
    /// keep their default; unknown keys and wrong shapes are errors; `null`
    /// resets an optional field.
    pub fn from_json(doc: &Json) -> Result<QuerySpec, JsonError> {
        let pairs = doc.as_obj("query spec")?;
        for (key, _) in pairs {
            if !SPEC_KEYS.contains(&key.as_str()) {
                return Err(JsonError(format!("query spec: unknown key {key:?}")));
            }
        }
        let mut spec = QuerySpec::default();
        if let Some(v) = doc.get("k") {
            spec.k = v.as_usize("k")?;
        }
        match doc.get("k_pair") {
            None | Some(Json::Null) => {}
            Some(v) => {
                let left = v.get("left").ok_or_else(|| JsonError("k_pair.left missing".into()))?;
                let right =
                    v.get("right").ok_or_else(|| JsonError("k_pair.right missing".into()))?;
                spec.k_pair = Some(KPair {
                    left: left.as_usize("k_pair.left")?,
                    right: right.as_usize("k_pair.right")?,
                });
            }
        }
        if let Some(v) = doc.get("algorithm") {
            spec.algorithm = parse_code(v, "algorithm")?;
        }
        if let Some(v) = doc.get("engine") {
            spec.engine = parse_code(v, "engine")?;
        }
        if let Some(v) = doc.get("order") {
            spec.order = parse_code(v, "order")?;
        }
        if let Some(v) = doc.get("enum_kind") {
            spec.enum_kind = parse_code(v, "enum_kind")?;
        }
        if let Some(v) = doc.get("emit") {
            spec.emit_mode = parse_code(v, "emit")?;
        }
        match doc.get("anchor") {
            None | Some(Json::Null) => {}
            Some(v) => spec.anchor = Some(parse_code(v, "anchor")?),
        }
        if let Some(v) = doc.get("theta_left") {
            spec.theta_left = v.as_usize("theta_left")?;
        }
        if let Some(v) = doc.get("theta_right") {
            spec.theta_right = v.as_usize("theta_right")?;
        }
        match doc.get("core_reduction") {
            None | Some(Json::Null) => {}
            Some(v) => spec.core_reduction = Some(v.as_bool("core_reduction")?),
        }
        if let Some(v) = doc.get("threads") {
            spec.threads = v.as_usize("threads")?;
        }
        if let Some(v) = doc.get("seen_segments") {
            spec.seen_segments = v.as_usize("seen_segments")?;
        }
        if let Some(v) = doc.get("steal_adaptive") {
            spec.steal_adaptive = v.as_bool("steal_adaptive")?;
        }
        match doc.get("limit") {
            None | Some(Json::Null) => {}
            Some(v) => spec.limit = Some(v.as_u64("limit")?),
        }
        match doc.get("time_budget") {
            None | Some(Json::Null) => {}
            Some(v) => spec.time_budget = Some(duration_from(v, "time_budget")?),
        }
        if let Some(v) = doc.get("stream_buffer") {
            spec.stream_buffer = v.as_usize("stream_buffer")?;
        }
        if let Some(v) = doc.get("kernel") {
            spec.kernel = parse_code(v, "kernel")?;
        }
        Ok(spec)
    }

    /// [`QuerySpec::to_json`] rendered as a compact string.
    pub fn to_json_string(&self) -> String {
        self.to_json().encode()
    }

    /// Parses a spec from a JSON document string.
    pub fn from_json_str(text: &str) -> Result<QuerySpec, JsonError> {
        Self::from_json(&Json::parse(text)?)
    }
}

impl Biplex {
    /// Encodes the solution as `[[left...],[right...]]`.
    pub fn to_json(&self) -> Json {
        let side = |ids: &[u32]| Json::Arr(ids.iter().map(|v| u(u64::from(*v))).collect());
        Json::Arr(vec![side(&self.left), side(&self.right)])
    }

    /// Decodes a solution from the [`Biplex::to_json`] shape.
    pub fn from_json(doc: &Json) -> Result<Biplex, JsonError> {
        let sides = doc.as_arr("biplex")?;
        if sides.len() != 2 {
            return Err(JsonError(format!("biplex: expected 2 sides, got {}", sides.len())));
        }
        let side = |j: &Json, what: &str| -> Result<Vec<u32>, JsonError> {
            j.as_arr(what)?
                .iter()
                .map(|v| {
                    let id = v.as_u64(what)?;
                    u32::try_from(id)
                        .map_err(|_| JsonError(format!("{what}: vertex {id} out of u32 range")))
                })
                .collect()
        };
        Ok(Biplex {
            left: side(&sides[0], "biplex.left")?,
            right: side(&sides[1], "biplex.right")?,
        })
    }
}

impl TraversalStats {
    /// Encodes the counters as a flat JSON object.
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("solutions", u(self.solutions)),
            ("reported", u(self.reported)),
            ("links", u(self.links)),
            ("duplicate_links", u(self.duplicate_links)),
            ("almost_sat_graphs", u(self.almost_sat_graphs)),
            ("local_solutions", u(self.local_solutions)),
            ("pruned_right_shrinking", u(self.pruned_right_shrinking)),
            ("pruned_exclusion", u(self.pruned_exclusion)),
            ("pruned_size", u(self.pruned_size)),
            ("max_depth", u(self.max_depth as u64)),
            ("r_combinations", u(self.almost_sat.r_combinations)),
            ("l_candidates", u(self.almost_sat.l_candidates)),
            ("almost_sat_local_solutions", u(self.almost_sat.local_solutions)),
            ("stopped_early", Json::Bool(self.stopped_early)),
        ])
    }

    /// Decodes counters written by [`TraversalStats::to_json`].
    pub fn from_json(doc: &Json) -> Result<TraversalStats, JsonError> {
        let get = |key: &str| -> Result<u64, JsonError> {
            doc.get(key).map(|v| v.as_u64(key)).transpose().map(Option::unwrap_or_default)
        };
        Ok(TraversalStats {
            solutions: get("solutions")?,
            reported: get("reported")?,
            links: get("links")?,
            duplicate_links: get("duplicate_links")?,
            almost_sat_graphs: get("almost_sat_graphs")?,
            local_solutions: get("local_solutions")?,
            pruned_right_shrinking: get("pruned_right_shrinking")?,
            pruned_exclusion: get("pruned_exclusion")?,
            pruned_size: get("pruned_size")?,
            max_depth: get("max_depth")? as usize,
            almost_sat: AlmostSatStats {
                r_combinations: get("r_combinations")?,
                l_candidates: get("l_candidates")?,
                local_solutions: get("almost_sat_local_solutions")?,
            },
            stopped_early: doc
                .get("stopped_early")
                .map(|v| v.as_bool("stopped_early"))
                .transpose()?
                .unwrap_or(false),
        })
    }
}

impl ParallelStats {
    /// Encodes the counters as a flat JSON object.
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("solutions", u(self.solutions)),
            ("reported", u(self.reported)),
            ("almost_sat_graphs", u(self.almost_sat_graphs)),
            ("local_solutions", u(self.local_solutions)),
            ("links", u(self.links)),
            ("steals", u(self.steals)),
            ("threads", u(self.threads as u64)),
            ("stopped_early", Json::Bool(self.stopped_early)),
        ])
    }

    /// Decodes counters written by [`ParallelStats::to_json`].
    pub fn from_json(doc: &Json) -> Result<ParallelStats, JsonError> {
        let get = |key: &str| -> Result<u64, JsonError> {
            doc.get(key).map(|v| v.as_u64(key)).transpose().map(Option::unwrap_or_default)
        };
        Ok(ParallelStats {
            solutions: get("solutions")?,
            reported: get("reported")?,
            almost_sat_graphs: get("almost_sat_graphs")?,
            local_solutions: get("local_solutions")?,
            links: get("links")?,
            steals: get("steals")?,
            threads: get("threads")? as usize,
            stopped_early: doc
                .get("stopped_early")
                .map(|v| v.as_bool("stopped_early"))
                .transpose()?
                .unwrap_or(false),
        })
    }
}

impl AsymStats {
    /// Encodes the counters as a flat JSON object.
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("solutions", u(self.solutions)),
            ("almost_sat_graphs", u(self.almost_sat_graphs)),
            ("local_solutions", u(self.local_solutions)),
            ("links", u(self.links)),
            ("stopped_early", Json::Bool(self.stopped_early)),
        ])
    }

    /// Decodes counters written by [`AsymStats::to_json`].
    pub fn from_json(doc: &Json) -> Result<AsymStats, JsonError> {
        let get = |key: &str| -> Result<u64, JsonError> {
            doc.get(key).map(|v| v.as_u64(key)).transpose().map(Option::unwrap_or_default)
        };
        Ok(AsymStats {
            solutions: get("solutions")?,
            almost_sat_graphs: get("almost_sat_graphs")?,
            local_solutions: get("local_solutions")?,
            links: get("links")?,
            stopped_early: doc
                .get("stopped_early")
                .map(|v| v.as_bool("stopped_early"))
                .transpose()?
                .unwrap_or(false),
        })
    }
}

impl EngineStats {
    /// Stable kind code of the variant (`"sequential"`, `"parallel"`,
    /// `"asym"`, `"oracle"`). Pinned by `tests/api_surface.rs`.
    pub fn kind(&self) -> &'static str {
        match self {
            EngineStats::Sequential(_) => "sequential",
            EngineStats::Parallel(_) => "parallel",
            EngineStats::Asym(_) => "asym",
            EngineStats::Oracle => "oracle",
        }
    }

    /// Encodes the stats as `{kind, counters}`.
    pub fn to_json(&self) -> Json {
        let counters = match self {
            EngineStats::Sequential(stats) => stats.to_json(),
            EngineStats::Parallel(stats) => stats.to_json(),
            EngineStats::Asym(stats) => stats.to_json(),
            EngineStats::Oracle => obj(vec![]),
        };
        obj(vec![("kind", s(self.kind())), ("counters", counters)])
    }

    /// Decodes stats written by [`EngineStats::to_json`].
    pub fn from_json(doc: &Json) -> Result<EngineStats, JsonError> {
        let kind = doc
            .get("kind")
            .ok_or_else(|| JsonError("engine stats: kind missing".into()))?
            .as_str("kind")?;
        let counters =
            doc.get("counters").ok_or_else(|| JsonError("engine stats: counters missing".into()));
        match kind {
            "sequential" => Ok(EngineStats::Sequential(TraversalStats::from_json(counters?)?)),
            "parallel" => Ok(EngineStats::Parallel(ParallelStats::from_json(counters?)?)),
            "asym" => Ok(EngineStats::Asym(AsymStats::from_json(counters?)?)),
            "oracle" => Ok(EngineStats::Oracle),
            other => Err(JsonError(format!("engine stats: unknown kind {other:?}"))),
        }
    }
}

impl RunReport {
    /// Encodes the report (stop reason as its stable code, elapsed as a
    /// `{secs, nanos}` pair, engine stats tagged by kind).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("solutions", u(self.solutions)),
            ("stop", s(self.stop.to_string())),
            ("elapsed", duration_json(self.elapsed)),
            ("stats", self.stats.to_json()),
        ];
        if let Some(r) = self.reduced {
            pairs.push((
                "reduced",
                obj(vec![
                    ("left", u(u64::from(r.left))),
                    ("right", u(u64::from(r.right))),
                    ("edges", u(r.edges)),
                ]),
            ));
        }
        obj(pairs)
    }

    /// Decodes a report written by [`RunReport::to_json`].
    pub fn from_json(doc: &Json) -> Result<RunReport, JsonError> {
        let stop = parse_code(
            doc.get("stop").ok_or_else(|| JsonError("report: stop missing".into()))?,
            "stop",
        )?;
        let stats = EngineStats::from_json(
            doc.get("stats").ok_or_else(|| JsonError("report: stats missing".into()))?,
        )?;
        let reduced = match doc.get("reduced") {
            None | Some(Json::Null) => None,
            Some(v) => {
                let field = |key: &str| -> Result<u64, JsonError> {
                    v.get(key)
                        .ok_or_else(|| JsonError(format!("reduced.{key} missing")))?
                        .as_u64(key)
                };
                Some(ReducedGraph {
                    left: field("left")? as u32,
                    right: field("right")? as u32,
                    edges: field("edges")?,
                })
            }
        };
        Ok(RunReport {
            solutions: doc
                .get("solutions")
                .ok_or_else(|| JsonError("report: solutions missing".into()))?
                .as_u64("solutions")?,
            stop,
            elapsed: match doc.get("elapsed") {
                Some(v) => duration_from(v, "elapsed")?,
                None => Duration::ZERO,
            },
            stats,
            reduced,
        })
    }
}

impl ApiError {
    /// Encodes the error as `{code, message}` with the stable
    /// [`ApiError::code`].
    pub fn to_json(&self) -> Json {
        obj(vec![("code", s(self.code())), ("message", s(self.message()))])
    }

    /// Decodes an error written by [`ApiError::to_json`].
    pub fn from_json(doc: &Json) -> Result<ApiError, JsonError> {
        let code = doc
            .get("code")
            .ok_or_else(|| JsonError("api error: code missing".into()))?
            .as_str("code")?;
        let message = match doc.get("message") {
            Some(v) => v.as_str("message")?,
            None => "",
        };
        ApiError::from_code(code, message)
            .ok_or_else(|| JsonError(format!("api error: unknown code {code:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{Algorithm, Engine, StopReason};

    #[test]
    fn default_spec_encodes_empty_and_round_trips() {
        let spec = QuerySpec::default();
        assert_eq!(spec.to_json_string(), "{}");
        assert_eq!(QuerySpec::from_json_str("{}").unwrap(), spec);
    }

    #[test]
    fn full_spec_round_trips() {
        let spec = QuerySpec {
            k: 2,
            k_pair: Some(KPair { left: 1, right: 3 }),
            algorithm: Algorithm::Asym,
            engine: Engine::WorkSteal,
            order: bigraph::order::VertexOrder::Degeneracy,
            enum_kind: crate::enum_almost_sat::EnumKind::L1R2,
            emit_mode: crate::traversal::EmitMode::Alternating,
            anchor: Some(crate::traversal::Anchor::Right),
            theta_left: 3,
            theta_right: 4,
            core_reduction: Some(false),
            threads: 8,
            seen_segments: 2,
            steal_adaptive: false,
            limit: Some(1000),
            time_budget: Some(Duration::new(3, 500_000_001)),
            stream_buffer: 64,
            kernel: bigraph::intersect::Kernel::Chunked,
        };
        let text = spec.to_json_string();
        assert_eq!(QuerySpec::from_json_str(&text).unwrap(), spec);
    }

    #[test]
    fn unknown_keys_and_bad_shapes_are_rejected() {
        assert!(QuerySpec::from_json_str("{\"kk\":1}").is_err());
        assert!(QuerySpec::from_json_str("{\"k\":\"two\"}").is_err());
        assert!(QuerySpec::from_json_str("{\"algorithm\":\"quantum\"}").is_err());
        assert!(QuerySpec::from_json_str("{\"kernel\":\"simd\"}").is_err());
        assert!(QuerySpec::from_json_str("[1,2]").is_err());
        assert!(QuerySpec::from_json_str("{\"time_budget\":{\"nanos\":2000000000}}").is_err());
        assert!(QuerySpec::from_json_str("not json").is_err());
    }

    #[test]
    fn report_round_trips_across_engine_kinds() {
        let g =
            bigraph::BipartiteGraph::from_edges(3, 3, &[(0, 0), (1, 1), (2, 2), (0, 1)]).unwrap();
        for spec in [
            QuerySpec::default(),
            QuerySpec { algorithm: Algorithm::Asym, ..QuerySpec::default() },
            QuerySpec { algorithm: Algorithm::BruteForce, ..QuerySpec::default() },
            QuerySpec {
                algorithm: Algorithm::Large,
                theta_left: 1,
                theta_right: 1,
                ..QuerySpec::default()
            },
            QuerySpec { engine: Engine::WorkSteal, threads: 2, ..QuerySpec::default() },
        ] {
            let mut sink = crate::sink::CollectSink::new();
            let report = crate::api::Enumerator::from_spec(&g, &spec).run(&mut sink).unwrap();
            let back = RunReport::from_json(&report.to_json()).unwrap();
            assert_eq!(back.solutions, report.solutions);
            assert_eq!(back.stop, report.stop);
            assert_eq!(back.elapsed, report.elapsed);
            assert_eq!(back.stats.kind(), report.stats.kind());
            match (&back.stats, &report.stats) {
                (EngineStats::Sequential(a), EngineStats::Sequential(b)) => assert_eq!(a, b),
                (EngineStats::Asym(a), EngineStats::Asym(b)) => assert_eq!(a, b),
                (EngineStats::Oracle, EngineStats::Oracle) => {}
                (EngineStats::Parallel(a), EngineStats::Parallel(b)) => {
                    assert_eq!(a.solutions, b.solutions);
                    assert_eq!(a.threads, b.threads);
                }
                other => panic!("kind mismatch: {other:?}"),
            }
            assert_eq!(back.reduced.is_some(), report.reduced.is_some());
        }
    }

    #[test]
    fn stop_reason_codes_parse_back() {
        for reason in [
            StopReason::Exhausted,
            StopReason::LimitReached,
            StopReason::TimeBudget,
            StopReason::SinkStopped,
            StopReason::Cancelled,
        ] {
            assert_eq!(reason.to_string().parse::<StopReason>().unwrap(), reason);
        }
        assert!("crashed".parse::<StopReason>().is_err());
    }

    #[test]
    fn api_error_codes_round_trip() {
        for e in [
            ApiError::Unsupported("a".into()),
            ApiError::InvalidConfig("b".into()),
            ApiError::Resource("c".into()),
        ] {
            let back = ApiError::from_json(&e.to_json()).unwrap();
            assert_eq!(back, e);
        }
        assert!(ApiError::from_code("weird", "m").is_none());
    }

    #[test]
    fn biplex_round_trips() {
        let b = Biplex { left: vec![0, 5, 9], right: vec![2] };
        assert_eq!(Biplex::from_json(&b.to_json()).unwrap(), b);
        assert!(Biplex::from_json(&Json::parse("[[0]]").unwrap()).is_err());
        assert!(Biplex::from_json(&Json::parse("[[0],[4294967296]]").unwrap()).is_err());
    }
}
