//! Counters describing one traversal run.
//!
//! The solution-graph statistics (number of nodes and links) are the metric
//! of Figure 11; the remaining counters quantify where the work went and
//! back the ablation discussion of Section 6.2.

use crate::enum_almost_sat::AlmostSatStats;

/// Counters accumulated by the traversal engine.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraversalStats {
    /// Distinct maximal k-biplexes discovered (nodes of the solution graph
    /// reached from the initial solution).
    pub solutions: u64,
    /// Solutions actually reported to the sink (differs from `solutions`
    /// when size thresholds filter the output).
    pub reported: u64,
    /// Links of the (pruned) solution graph that the traversal followed:
    /// one per extended local solution that survived every pruning rule,
    /// whether or not its target had been seen before.
    pub links: u64,
    /// Links that pointed at an already-known solution (`links` minus these
    /// is the number of tree edges of the DFS).
    pub duplicate_links: u64,
    /// Almost-satisfying graphs formed (Step 1 executions).
    pub almost_sat_graphs: u64,
    /// Local solutions produced by `EnumAlmostSat` across the run.
    pub local_solutions: u64,
    /// Local solutions discarded by the right-shrinking rule.
    pub pruned_right_shrinking: u64,
    /// Candidate vertices / local solutions / extended solutions discarded
    /// by the exclusion strategy.
    pub pruned_exclusion: u64,
    /// Candidates or solutions discarded by the large-MBP size thresholds.
    pub pruned_size: u64,
    /// Maximum depth of the DFS over the solution graph.
    pub max_depth: usize,
    /// Aggregated `EnumAlmostSat` work counters.
    pub almost_sat: AlmostSatStats,
    /// True when the run was cut short by the sink (e.g. "first 1000")
    /// or by the configured deadline.
    pub stopped_early: bool,
}

impl TraversalStats {
    /// Number of links that discovered a new solution (the DFS tree edges).
    pub fn tree_links(&self) -> u64 {
        self.links - self.duplicate_links
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_links_is_difference() {
        let stats = TraversalStats { links: 10, duplicate_links: 4, ..Default::default() };
        assert_eq!(stats.tree_links(), 6);
    }

    #[test]
    fn default_is_zeroed() {
        let stats = TraversalStats::default();
        assert_eq!(stats.solutions, 0);
        assert_eq!(stats.links, 0);
        assert!(!stats.stopped_early);
    }
}
