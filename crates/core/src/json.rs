//! A minimal, dependency-free JSON value with an exact-integer number type.
//!
//! The workspace builds offline (no `serde`), but the service layer needs a
//! self-describing wire format for [`crate::api::QuerySpec`] and
//! [`crate::api::RunReport`]. This module is the shared encoder/decoder:
//! a [`Json`] tree, a recursive-descent parser and a compact writer.
//!
//! Design points that matter for the wire format:
//!
//! * **Integers stay exact.** JSON numbers without a fraction or exponent
//!   parse into [`Json::Int`] (an `i128`), so every `u64` counter in a
//!   [`crate::api::RunReport`] round-trips bit-for-bit — no `f64` rounding
//!   at 2^53.
//! * **Objects preserve insertion order** (a `Vec` of pairs); duplicate
//!   keys resolve to the *last* occurrence on lookup, matching common JSON
//!   implementations.
//! * **Depth-limited parsing.** The parser rejects nesting deeper than
//!   [`MAX_DEPTH`] so a hostile payload cannot overflow the stack — this
//!   module sits directly behind a network socket.

use std::fmt;

/// Maximum nesting depth the parser accepts (arrays + objects combined).
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number written without fraction or exponent; exact up to `i128`.
    Int(i128),
    /// Any other number (fraction or exponent present).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// A malformed JSON document or a value of the wrong shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(msg.into()))
}

impl Json {
    /// Looks up a key in an object (last occurrence wins). `None` for
    /// missing keys and for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, or a shape error naming `what`.
    pub fn as_str(&self, what: &str) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => err(format!("{what}: expected a string, got {other:?}")),
        }
    }

    /// The value as a `u64`, or a shape error naming `what`.
    pub fn as_u64(&self, what: &str) -> Result<u64, JsonError> {
        match self {
            Json::Int(i) => {
                u64::try_from(*i).map_err(|_| JsonError(format!("{what}: {i} out of u64 range")))
            }
            other => err(format!("{what}: expected an integer, got {other:?}")),
        }
    }

    /// The value as a `usize`, or a shape error naming `what`.
    pub fn as_usize(&self, what: &str) -> Result<usize, JsonError> {
        let v = self.as_u64(what)?;
        usize::try_from(v).map_err(|_| JsonError(format!("{what}: {v} out of usize range")))
    }

    /// The value as an `f64` (accepts both number forms), or a shape error.
    pub fn as_f64(&self, what: &str) -> Result<f64, JsonError> {
        match self {
            Json::Int(i) => Ok(*i as f64),
            Json::Float(f) => Ok(*f),
            other => err(format!("{what}: expected a number, got {other:?}")),
        }
    }

    /// The value as a bool, or a shape error naming `what`.
    pub fn as_bool(&self, what: &str) -> Result<bool, JsonError> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => err(format!("{what}: expected a boolean, got {other:?}")),
        }
    }

    /// The value as an array slice, or a shape error naming `what`.
    pub fn as_arr(&self, what: &str) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(items) => Ok(items),
            other => err(format!("{what}: expected an array, got {other:?}")),
        }
    }

    /// The value as object pairs, or a shape error naming `what`.
    pub fn as_obj(&self, what: &str) -> Result<&[(String, Json)], JsonError> {
        match self {
            Json::Obj(pairs) => Ok(pairs),
            other => err(format!("{what}: expected an object, got {other:?}")),
        }
    }

    /// Parses a JSON document (rejecting trailing garbage).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Serializes the value compactly (no whitespace).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => {
                use fmt::Write as _;
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    let text = format!("{f}");
                    out.push_str(&text);
                    // `{}` prints integral floats without a dot; keep the
                    // float/int distinction on the wire.
                    if !text.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    // JSON has no NaN/Inf; encode as null like serde_json.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn consume(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.peek() {
            None => err("unexpected end of input"),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => err(format!("unexpected byte {:?} at {}", other as char, self.pos)),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.consume(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.consume(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.consume(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.consume(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return err("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return err("unterminated escape");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uDCxx`.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return err("invalid \\u escape"),
                            }
                        }
                        other => return err(format!("invalid escape \\{}", other as char)),
                    }
                }
                _ => {
                    // Copy the whole span up to the next quote or escape in
                    // one go. The parser's input is a `&str`, and `"` / `\`
                    // are ASCII, so the span boundaries never split a
                    // multi-byte character.
                    let start = self.pos - 1;
                    while let Some(b) = self.peek() {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    match std::str::from_utf8(&self.bytes[start..self.pos]) {
                        Ok(span) => out.push_str(span),
                        Err(_) => return err("invalid utf-8 in string"),
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return err("truncated \\u escape");
        }
        let Ok(hex) = std::str::from_utf8(&self.bytes[self.pos..end]) else {
            return err("invalid \\u escape");
        };
        let cp =
            u32::from_str_radix(hex, 16).map_err(|_| JsonError("invalid \\u escape".into()))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let Ok(text) = std::str::from_utf8(&self.bytes[start..self.pos]) else {
            return err("invalid number");
        };
        if text.is_empty() || text == "-" {
            return err(format!("invalid number at byte {start}"));
        }
        if is_float {
            match text.parse::<f64>() {
                Ok(f) if f.is_finite() => Ok(Json::Float(f)),
                _ => err(format!("invalid number {text:?}")),
            }
        } else {
            text.parse::<i128>()
                .map(Json::Int)
                .map_err(|_| JsonError(format!("integer {text:?} out of range")))
        }
    }
}

/// Convenience: builds a [`Json::Obj`] from `(key, value)` pairs.
pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Convenience: a [`Json::Str`] from anything stringy.
pub fn s(text: impl Into<String>) -> Json {
    Json::Str(text.into())
}

/// Convenience: a [`Json::Int`] from an unsigned counter.
pub fn u(v: u64) -> Json {
    Json::Int(v as i128)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let doc = obj(vec![
            ("a", Json::Null),
            ("b", Json::Bool(true)),
            ("c", Json::Int(-42)),
            ("d", Json::Float(1.5)),
            ("e", s("hi \"there\"\n")),
            ("f", Json::Arr(vec![u(1), u(2), u(3)])),
            ("g", obj(vec![("nested", u(u64::MAX))])),
        ]);
        let text = doc.encode();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        // u64::MAX survives exactly (would not through an f64).
        assert_eq!(back.get("g").unwrap().get("nested").unwrap().as_u64("n").unwrap(), u64::MAX);
    }

    #[test]
    fn integers_and_floats_stay_distinct() {
        assert_eq!(Json::parse("7").unwrap(), Json::Int(7));
        assert_eq!(Json::parse("7.0").unwrap(), Json::Float(7.0));
        assert_eq!(Json::parse("7e0").unwrap(), Json::Float(7.0));
        assert_eq!(Json::Float(7.0).encode(), "7.0");
        assert_eq!(Json::parse(&Json::Float(7.0).encode()).unwrap(), Json::Float(7.0));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "01x",
            "-",
            "\"unterminated",
            "{\"a\" 1}",
            "[1] trailing",
            "nullx",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rejects_deep_nesting() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn duplicate_keys_resolve_to_last() {
        let doc = Json::parse("{\"a\":1,\"a\":2}").unwrap();
        assert_eq!(doc.get("a").unwrap(), &Json::Int(2));
    }

    #[test]
    fn escapes_and_unicode() {
        let doc = Json::parse("\"\\u00e9\\u20ac ok\"").unwrap();
        assert_eq!(doc, Json::Str("é€ ok".to_string()));
        let doc = Json::parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(doc, Json::Str("😀".to_string()));
        let s = Json::Str("tab\there".to_string());
        assert_eq!(Json::parse(&s.encode()).unwrap(), s);
    }

    #[test]
    fn shape_accessors_report_errors() {
        let doc = Json::parse("{\"n\":3,\"s\":\"x\",\"b\":false,\"a\":[]}").unwrap();
        assert_eq!(doc.get("n").unwrap().as_u64("n").unwrap(), 3);
        assert!(doc.get("n").unwrap().as_str("n").is_err());
        assert!(doc.get("s").unwrap().as_u64("s").is_err());
        assert!(!doc.get("b").unwrap().as_bool("b").unwrap());
        assert_eq!(doc.get("a").unwrap().as_arr("a").unwrap().len(), 0);
        assert!(doc.get("missing").is_none());
        assert!(Json::parse("-1").unwrap().as_u64("v").is_err());
    }
}
