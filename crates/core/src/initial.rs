//! Initial solutions for the traversal frameworks.
//!
//! * `bTraversal` may start from *any* maximal k-biplex; we build one by
//!   greedily extending the empty subgraph in the preset order.
//! * `iTraversal` starts from the designated solution `H0 = (L0, R)` where
//!   `R` is the whole right side and `L0` is any maximal left set keeping
//!   `(L0, R)` a k-biplex (Section 3.2). The symmetric option `(L, R0)` is
//!   provided for the "right-anchored" comparison of Section 6.2.

use bigraph::BipartiteGraph;

use crate::biplex::{Biplex, PartialBiplex};
use crate::extend::{extend_to_maximal, ExtendMode};

/// Builds the designated initial solution `H0 = (L0, R)` of `iTraversal`:
/// the right side is the whole of `R`, and left vertices are added greedily
/// in ascending id order while the k-biplex property holds.
///
/// Only left vertices with degree at least `|R| − k` can possibly join, so
/// the candidates are pre-filtered by degree — this keeps the construction
/// linear in practice even on graphs with millions of vertices.
pub fn initial_left_anchored(g: &BipartiteGraph, k: usize) -> Biplex {
    let all_right: Vec<u32> = (0..g.num_right()).collect();
    let mut partial = PartialBiplex::from_sets(g, &[], &all_right);
    let need = (g.num_right() as usize).saturating_sub(k);
    for v in 0..g.num_left() {
        if g.left_degree(v) >= need && partial.can_add_left(g, v, k) {
            partial.add_left(g, v);
        }
    }
    partial.to_biplex()
}

/// The symmetric initial solution `H0' = (L, R0)` (all left vertices, plus a
/// maximal set of right vertices).
pub fn initial_right_anchored(g: &BipartiteGraph, k: usize) -> Biplex {
    let all_left: Vec<u32> = (0..g.num_left()).collect();
    let mut partial = PartialBiplex::from_sets(g, &all_left, &[]);
    let need = (g.num_left() as usize).saturating_sub(k);
    for u in 0..g.num_right() {
        if g.right_degree(u) >= need && partial.can_add_right(g, u, k) {
            partial.add_right(g, u);
        }
    }
    partial.to_biplex()
}

/// An arbitrary maximal k-biplex, built by greedily extending the empty
/// subgraph in the preset order — the initial solution used by
/// `bTraversal` (Algorithm 1 line 1).
pub fn initial_arbitrary(g: &BipartiteGraph, k: usize) -> Biplex {
    let mut partial = PartialBiplex::new();
    extend_to_maximal(g, &mut partial, k, ExtendMode::BothSides);
    partial.to_biplex()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::biplex::is_maximal_k_biplex;

    fn fixture() -> BipartiteGraph {
        let mut edges = Vec::new();
        for v in 0u32..5 {
            for u in 0u32..5 {
                if !matches!((v, u), (0, 4) | (1, 3) | (1, 4) | (2, 0) | (3, 1) | (3, 2)) {
                    edges.push((v, u));
                }
            }
        }
        BipartiteGraph::from_edges(5, 5, &edges).unwrap()
    }

    #[test]
    fn left_anchored_initial_contains_all_of_r_and_is_maximal() {
        let g = fixture();
        for k in 0..=2usize {
            let h0 = initial_left_anchored(&g, k);
            assert_eq!(h0.right.len(), g.num_right() as usize, "k = {k}");
            assert!(is_maximal_k_biplex(&g, &h0.left, &h0.right, k), "k = {k}");
        }
    }

    #[test]
    fn right_anchored_initial_contains_all_of_l_and_is_maximal() {
        let g = fixture();
        for k in 0..=2usize {
            let h0 = initial_right_anchored(&g, k);
            assert_eq!(h0.left.len(), g.num_left() as usize, "k = {k}");
            assert!(is_maximal_k_biplex(&g, &h0.left, &h0.right, k), "k = {k}");
        }
    }

    #[test]
    fn arbitrary_initial_is_maximal() {
        let g = fixture();
        for k in 0..=3usize {
            let h0 = initial_arbitrary(&g, k);
            assert!(is_maximal_k_biplex(&g, &h0.left, &h0.right, k), "k = {k}");
            assert!(!h0.is_empty());
        }
    }

    #[test]
    fn left_anchored_on_sparse_graph_can_have_empty_left() {
        // No left vertex connects enough of R when the graph is very sparse
        // and k is small; (∅, R) is then itself the maximal solution.
        let g = BipartiteGraph::from_edges(3, 5, &[(0, 0), (1, 1), (2, 2)]).unwrap();
        let h0 = initial_left_anchored(&g, 1);
        assert!(h0.left.is_empty());
        assert_eq!(h0.right.len(), 5);
        assert!(is_maximal_k_biplex(&g, &h0.left, &h0.right, 1));
    }

    #[test]
    fn left_anchored_with_large_k_takes_everything_possible() {
        let g = fixture();
        // k = 5 >= |R| means every left vertex can always join.
        let h0 = initial_left_anchored(&g, 5);
        assert_eq!(h0.left.len(), 5);
        assert_eq!(h0.right.len(), 5);
    }

    #[test]
    fn transposed_symmetry() {
        // Right-anchored on g should equal left-anchored on the transpose
        // with sides swapped.
        let g = fixture();
        let t = g.transpose();
        for k in 0..=2usize {
            let a = initial_right_anchored(&g, k);
            let b = initial_left_anchored(&t, k).transpose();
            assert_eq!(a, b, "k = {k}");
        }
    }
}
