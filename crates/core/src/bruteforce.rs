//! Brute-force maximal k-biplex enumeration by subset enumeration.
//!
//! Exponential in the graph size and only usable for tiny graphs; it serves
//! as the *test oracle* that every traversal configuration and every
//! baseline is cross-validated against, and as a readable executable
//! specification of Definitions 2.1–2.3.

use bigraph::BipartiteGraph;

use crate::biplex::{is_k_biplex, Biplex};

/// Enumerates every maximal k-biplex of `g` by checking all `2^{|L|+|R|}`
/// vertex subsets. Panics if either side has more than 16 vertices.
///
/// The result is sorted canonically and duplicate-free.
pub fn brute_force_mbps(g: &BipartiteGraph, k: usize) -> Vec<Biplex> {
    let nl = g.num_left() as usize;
    let nr = g.num_right() as usize;
    assert!(nl <= 16 && nr <= 16, "brute force is only meant for tiny graphs");

    // Collect every k-biplex first.
    let mut biplexes: Vec<Biplex> = Vec::new();
    for lmask in 0u32..(1 << nl) {
        let left: Vec<u32> = (0..nl as u32).filter(|&v| lmask & (1 << v) != 0).collect();
        for rmask in 0u32..(1 << nr) {
            let right: Vec<u32> = (0..nr as u32).filter(|&u| rmask & (1 << u) != 0).collect();
            if is_k_biplex(g, &left, &right, k) {
                biplexes.push(Biplex { left: left.clone(), right });
            }
        }
    }

    // Keep the maximal ones (no proper k-biplex superset).
    let mut maximal: Vec<Biplex> = biplexes
        .iter()
        .filter(|b| {
            !biplexes
                .iter()
                .any(|other| other.num_vertices() > b.num_vertices() && b.is_subgraph_of(other))
        })
        .cloned()
        .collect();
    maximal.sort();
    maximal.dedup();
    maximal
}

/// Brute-force enumeration of *large* MBPs: all maximal k-biplexes with
/// `|L| ≥ theta_left` and `|R| ≥ theta_right` (post-filtered).
pub fn brute_force_large_mbps(
    g: &BipartiteGraph,
    k: usize,
    theta_left: usize,
    theta_right: usize,
) -> Vec<Biplex> {
    brute_force_mbps(g, k)
        .into_iter()
        .filter(|b| b.left.len() >= theta_left && b.right.len() >= theta_right)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::biplex::is_maximal_k_biplex;

    fn small_graph() -> BipartiteGraph {
        BipartiteGraph::from_edges(3, 3, &[(0, 0), (0, 1), (1, 0), (1, 1), (1, 2), (2, 2)]).unwrap()
    }

    #[test]
    fn results_are_maximal_k_biplexes() {
        let g = small_graph();
        for k in 0..=2 {
            let all = brute_force_mbps(&g, k);
            assert!(!all.is_empty());
            for b in &all {
                assert!(is_maximal_k_biplex(&g, &b.left, &b.right, k), "k {k} {b:?}");
            }
        }
    }

    #[test]
    fn k0_contains_the_obvious_bicliques() {
        let g = small_graph();
        let all = brute_force_mbps(&g, 0);
        // {0,1} x {0,1} is a maximal biclique.
        assert!(all.contains(&Biplex::new(vec![0, 1], vec![0, 1])));
        // {1,2} x {2} is a maximal biclique.
        assert!(all.contains(&Biplex::new(vec![1, 2], vec![2])));
    }

    #[test]
    fn larger_k_allows_larger_solutions() {
        let g = small_graph();
        let k0_max = brute_force_mbps(&g, 0).iter().map(Biplex::num_vertices).max().unwrap();
        let k2_max = brute_force_mbps(&g, 2).iter().map(Biplex::num_vertices).max().unwrap();
        assert!(k2_max >= k0_max);
    }

    #[test]
    fn large_filter() {
        let g = small_graph();
        let large = brute_force_large_mbps(&g, 1, 2, 2);
        for b in &large {
            assert!(b.left.len() >= 2 && b.right.len() >= 2);
        }
        let all = brute_force_mbps(&g, 1);
        let expected = all.iter().filter(|b| b.left.len() >= 2 && b.right.len() >= 2).count();
        assert_eq!(large.len(), expected);
    }

    #[test]
    fn empty_graph_has_the_empty_solution() {
        let g = BipartiteGraph::from_edges(0, 0, &[]).unwrap();
        let all = brute_force_mbps(&g, 1);
        assert_eq!(all.len(), 1);
        assert!(all[0].is_empty());
    }
}
