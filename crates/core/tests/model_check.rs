//! Deterministic model-checking of the lock-free core's concurrency
//! protocols, driven by the vendored [`modelsim`] runtime.
//!
//! Compiled only under the model backend of [`kbiplex::sync`]:
//!
//! ```sh
//! RUSTFLAGS="--cfg kbiplex_model" cargo test -p kbiplex --features model --test model_check
//! ```
//!
//! Each test hands a protocol closure to [`modelsim::check`], which runs it
//! thousands of times under bounded-exhaustive (preemption-bounded DFS) and
//! randomized schedule exploration with a weak-memory visibility
//! simulation. The positive tests assert the protocol invariants hold on
//! every explored schedule *and* that coverage met the floor; the mutation
//! tests downgrade one named memory-ordering site to `Relaxed` (through the
//! `order!` registry — no rebuild) and assert the checker refutes the
//! weakened protocol, proving the harness would catch an accidental
//! downgrade of the real code.

#![cfg(all(kbiplex_model, feature = "model"))]

use bigraph::BipartiteGraph;
use kbiplex::sync::thread;
use kbiplex::{
    Biplex, CollectSink, ConcurrentSeenSet, Engine, EngineStats, Enumerator, StopReason,
};
use modelsim::{check, Config, Report};

/// Coverage floor: either the preemption-bounded DFS tree was exhausted or
/// at least this many distinct schedules ran.
const DISTINCT_FLOOR: usize = 10_000;

fn assert_coverage(report: &Report, what: &str) {
    assert!(
        report.dfs_complete || report.distinct >= DISTINCT_FLOOR,
        "{what}: insufficient schedule coverage: {report:?}"
    );
}

// ---------------------------------------------------------------------------
// Protocol 1: one-winner insert on a hot key
// ---------------------------------------------------------------------------

/// Three threads race to insert the same key; the chain-tail CAS protocol
/// must hand exactly one of them the win, on every schedule.
fn hot_key_protocol() {
    let set = ConcurrentSeenSet::with_geometry(1, 4);
    let wins = thread::scope(|s| {
        let h1 = s.spawn(|| set.insert(vec![7]) as usize);
        let h2 = s.spawn(|| set.insert(vec![7]) as usize);
        let mine = set.insert(vec![7]) as usize;
        mine + h1.join().expect("inserter 1") + h2.join().expect("inserter 2")
    });
    assert_eq!(wins, 1, "exactly one racer claims the hot key");
    assert_eq!(set.len(), 1);
    assert!(!set.insert(vec![7]), "the key stays claimed");
}

#[test]
fn seen_one_winner_on_hot_key() {
    let report = check(&Config::default(), hot_key_protocol).unwrap_or_else(|failure| {
        panic!("one-winner protocol refuted: {failure}");
    });
    assert_coverage(&report, "one-winner");
}

// ---------------------------------------------------------------------------
// Protocol 2: segment doubling with the striped in-flight drain
// ---------------------------------------------------------------------------

/// Two threads race on one key (whose bucket *moves* between eras: its hash
/// is odd, so the one-bucket era maps it to bucket 0 and the two-bucket era
/// to bucket 1) while the root thread drives a publication by inserting two
/// filler keys past the load factor. The drain protocol must guarantee no
/// insert straddles the doubling: the racing key is claimed exactly once
/// and every key survives into the new era.
fn growth_protocol() {
    let set = ConcurrentSeenSet::with_geometry(1, 1);
    let wins = thread::scope(|s| {
        let h1 = s.spawn(|| set.insert(vec![2]) as usize);
        let h2 = s.spawn(|| set.insert(vec![2]) as usize);
        set.insert(vec![1]);
        set.insert(vec![3]); // len 2 > capacity 1: triggers a doubling
        h1.join().expect("inserter 1") + h2.join().expect("inserter 2")
    });
    assert_eq!(wins, 1, "the era-straddling key is claimed exactly once");
    assert_eq!(set.len(), 3);
    for key in [vec![1], vec![2], vec![3]] {
        assert!(!set.insert(key.clone()), "key {key:?} lost across the doubling");
    }
}

#[test]
fn seen_growth_drain_never_straddles_eras() {
    // The growth protocol's deeper schedules repeat more often under the
    // randomized phase (PCT runs favour long uninterrupted stretches), so
    // it needs a little extra budget to clear the distinct-schedule floor.
    let config = Config { max_executions: 15_000, ..Config::default() };
    let report = check(&config, growth_protocol).unwrap_or_else(|failure| {
        panic!("growth protocol refuted: {failure}");
    });
    assert_coverage(&report, "growth-drain");
}

/// Downgrading any one of the three striped in-flight counter orderings to
/// `Relaxed` breaks the Dekker-style handshake between inserters and the
/// growth drain (a counter update the drain cannot observe lets the
/// publication overtake an in-flight insert). The checker must refute every
/// such mutant — this is the regression test for the checker itself.
#[test]
fn growth_protocol_mutants_are_caught() {
    for site in ["seen-enter-stripe", "seen-exit-stripe", "seen-drain-stripe"] {
        // Skip the DFS phase: the refuting schedules need one thread to run
        // far ahead of a preempted inserter, which lies beyond the DFS
        // preemption bound — the randomized (uniform + PCT) phase finds
        // them within ~1k executions.
        let config = Config { dfs_executions: 0, max_executions: 6_000, ..Config::default() }
            .with_mutation(site);
        let failure = check(&config, growth_protocol).err().unwrap_or_else(|| {
            panic!("ordering mutant {site} survived the model checker");
        });
        eprintln!("mutant {site}: refuted at execution {}", failure.execution);
        assert!(
            failure.message.contains("claimed exactly once")
                || failure.message.contains("lost across"),
            "mutant {site} failed for an unexpected reason: {failure}"
        );
    }
}

// ---------------------------------------------------------------------------
// Protocols 3+4: engine termination (pending counter / condvar wakeup)
// ---------------------------------------------------------------------------

/// The reference answer, computed once by the sequential engine.
fn expected_solutions(g: &BipartiteGraph) -> Vec<Biplex> {
    Enumerator::new(g).k(1).collect().expect("sequential reference")
}

fn tiny_graph() -> BipartiteGraph {
    BipartiteGraph::from_edges(2, 2, &[(0, 0), (0, 1), (1, 0)]).expect("valid edges")
}

/// Work-stealing engine under the model: the pending-work counter must
/// prove termination on every schedule — no early exit with nonempty
/// deques (missing solutions) and no lost decrement (hang, caught by the
/// deadlock detector / step cap showing up as a refutation or no coverage).
#[test]
fn work_steal_engine_terminates_exactly() {
    let g = tiny_graph();
    let expected = expected_solutions(&g);
    let report = check(&Config::default(), || {
        let mut sink = CollectSink::new();
        let run = Enumerator::new(&g)
            .k(1)
            .engine(Engine::WorkSteal)
            .threads(2)
            .run(&mut sink)
            .expect("valid facade configuration");
        let EngineStats::Parallel(stats) = run.stats else {
            panic!("work-steal runs report parallel stats");
        };
        assert_eq!(sink.into_sorted(), expected, "work-steal run must be exact on every schedule");
        assert_eq!(stats.solutions, expected.len() as u64);
        assert!(!stats.stopped_early);
    })
    .unwrap_or_else(|failure| panic!("work-steal termination refuted: {failure}"));
    assert_coverage(&report, "work-steal termination");
}

/// Global-queue engine under the model: the mutex+condvar hand-off must
/// never lose a wakeup (a sleeper missing the last notify deadlocks, which
/// the model reports as a refutation).
#[test]
fn global_queue_engine_terminates_exactly() {
    let g = tiny_graph();
    let expected = expected_solutions(&g);
    let report = check(&Config::default(), || {
        let mut sink = CollectSink::new();
        let run = Enumerator::new(&g)
            .k(1)
            .engine(Engine::GlobalQueue)
            .threads(2)
            .run(&mut sink)
            .expect("valid facade configuration");
        let EngineStats::Parallel(stats) = run.stats else {
            panic!("global-queue runs report parallel stats");
        };
        assert_eq!(
            sink.into_sorted(),
            expected,
            "global-queue run must be exact on every schedule"
        );
        assert_eq!(stats.solutions, expected.len() as u64);
    })
    .unwrap_or_else(|failure| panic!("global-queue termination refuted: {failure}"));
    assert_coverage(&report, "global-queue termination");
}

// ---------------------------------------------------------------------------
// Protocol 5: cancellation delivery through the facade gate
// ---------------------------------------------------------------------------

/// A limited run through the full `Enumerator` facade: the gate must
/// deliver exactly one solution, raise the shared cancel flag and wind the
/// workers down on every schedule (stale flag reads only delay the stop —
/// the run still terminates through the pending counter).
#[test]
fn cancellation_delivers_limit_exactly() {
    let g = tiny_graph();
    let report = check(&Config::default(), || {
        let mut sink = CollectSink::new();
        let run = Enumerator::new(&g)
            .k(1)
            .engine(Engine::WorkSteal)
            .threads(2)
            .limit(1)
            .run(&mut sink)
            .expect("valid spec");
        assert_eq!(run.stop, StopReason::LimitReached);
        assert_eq!(sink.solutions.len(), 1, "limit(1) must deliver exactly one solution");
    })
    .unwrap_or_else(|failure| panic!("cancellation protocol refuted: {failure}"));
    assert_coverage(&report, "cancellation");
}
