//! Parallel enumeration: enumerate every maximal k-biplex of a mid-sized
//! synthetic graph on all available cores and compare against the
//! sequential `iTraversal` run.
//!
//! Run with: `cargo run --release --example parallel_enumeration`

use std::time::Instant;

use mbpe::bigraph::gen::er::er_bipartite;
use mbpe::prelude::*;

fn main() {
    // An Erdős–Rényi bipartite graph sized so that both runs finish in a few
    // seconds while still containing tens of thousands of solutions.
    let g = er_bipartite(60, 60, 280, 20_22);
    println!("graph: |L| = {}, |R| = {}, |E| = {}", g.num_left(), g.num_right(), g.num_edges());
    let k = 1;

    let start = Instant::now();
    let sequential = enumerate_all(&g, k);
    let seq_time = start.elapsed();
    println!("sequential iTraversal: {} MBPs in {:.3} s", sequential.len(), seq_time.as_secs_f64());

    for threads in [1, 2, 4, 8] {
        let start = Instant::now();
        let (solutions, stats) =
            par_enumerate_mbps(&g, &ParallelConfig::new(k).with_threads(threads));
        let elapsed = start.elapsed();
        assert_eq!(solutions.len(), sequential.len(), "parallel run must find the same set");
        println!(
            "parallel ({} threads): {} MBPs in {:.3} s  (speedup {:.2}x, {} links followed)",
            stats.threads,
            stats.solutions,
            elapsed.as_secs_f64(),
            seq_time.as_secs_f64() / elapsed.as_secs_f64(),
            stats.links
        );
    }

    // The parallel engine also honours the large-MBP thresholds of Section 5.
    let (large, _) =
        par_enumerate_mbps(&g, &ParallelConfig::new(k).with_threads(0).with_thresholds(3, 3));
    println!("MBPs with both sides of size >= 3: {}", large.len());
}
