//! Parallel enumeration: enumerate every maximal k-biplex of a mid-sized
//! synthetic graph on all available cores and compare against the
//! sequential `iTraversal` run.
//!
//! Run with: `cargo run --release --example parallel_enumeration`

use std::time::Instant;

use mbpe::bigraph::gen::er::er_bipartite;
use mbpe::prelude::*;

fn main() {
    // An Erdős–Rényi bipartite graph sized so that both runs finish in a few
    // seconds while still containing tens of thousands of solutions.
    let g = er_bipartite(60, 60, 280, 20_22);
    println!("graph: |L| = {}, |R| = {}, |E| = {}", g.num_left(), g.num_right(), g.num_edges());
    let k = 1;

    let start = Instant::now();
    let sequential = Enumerator::new(&g).k(k).collect().expect("valid configuration");
    let seq_time = start.elapsed();
    println!("sequential iTraversal: {} MBPs in {:.3} s", sequential.len(), seq_time.as_secs_f64());

    for threads in [1, 2, 4, 8] {
        let start = Instant::now();
        let mut sink = CollectSink::new();
        let report = Enumerator::new(&g)
            .k(k)
            .engine(Engine::WorkSteal)
            .threads(threads)
            .run(&mut sink)
            .expect("valid configuration");
        let elapsed = start.elapsed();
        let solutions = sink.into_sorted();
        assert_eq!(solutions, sequential, "parallel run must find the same set");
        let EngineStats::Parallel(stats) = report.stats else { unreachable!() };
        println!(
            "parallel ({} threads): {} MBPs in {:.3} s  (speedup {:.2}x, {} links followed)",
            stats.threads,
            stats.solutions,
            elapsed.as_secs_f64(),
            seq_time.as_secs_f64() / elapsed.as_secs_f64(),
            stats.links
        );
    }

    // The parallel engine also honours the large-MBP thresholds of Section 5.
    let mut large = CountingSink::new();
    Enumerator::new(&g)
        .k(k)
        .engine(Engine::WorkSteal)
        .thresholds(3, 3)
        .run(&mut large)
        .expect("valid configuration");
    println!("MBPs with both sides of size >= 3: {}", large.count);
}
