//! Inspect the *solution graph* underlying the reverse-search frameworks:
//! compare the number of links traversed by bTraversal and by the three
//! iTraversal ablations on a small graph, reproducing the shape of the
//! paper's Figure 11 on a single input.
//!
//! Run with: `cargo run --release --example solution_graph_stats`

use mbpe::prelude::*;

fn main() {
    // The Divorce-scale stand-in from the dataset registry.
    let spec = mbpe::bigraph::gen::datasets::DatasetSpec::by_name("Divorce").unwrap();
    let g = spec.generate_scaled();
    println!(
        "dataset stand-in: {} (|L| = {}, |R| = {}, |E| = {})",
        spec.name,
        g.num_left(),
        g.num_right(),
        g.num_edges()
    );

    let k = 1;
    let variants = [
        ("bTraversal", Algorithm::BTraversal),
        ("iTraversal-ES-RS (left-anchored only)", Algorithm::LeftAnchoredOnly),
        ("iTraversal-ES (no exclusion)", Algorithm::ITraversalNoExclusion),
        ("iTraversal (full)", Algorithm::ITraversal),
    ];

    println!("\n{:<40} {:>10} {:>10} {:>12}", "variant", "#MBPs", "#links", "local sols");
    for (name, algorithm) in variants {
        let mut sink = CountingSink::new();
        let report = Enumerator::new(&g)
            .k(k)
            .algorithm(algorithm)
            .run(&mut sink)
            .expect("valid configuration");
        let EngineStats::Sequential(stats) = report.stats else { unreachable!() };
        println!(
            "{:<40} {:>10} {:>10} {:>12}",
            name, stats.solutions, stats.links, stats.local_solutions
        );
    }
    println!("\nEvery variant finds the same MBPs; the pruning techniques only remove");
    println!("links from the solution graph, which is what makes iTraversal fast.");
}
