//! Enumerate only *large* maximal k-biplexes (both sides at least θ) from a
//! synthetic power-law graph, using the (θ−k)-core reduction and the
//! size-pruned iTraversal of Section 5 of the paper.
//!
//! Run with: `cargo run --release --example large_biplexes [k] [theta]`

use mbpe::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let k: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);
    let theta: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);

    // A skewed synthetic graph standing in for a review network, sized so
    // the demo finishes in seconds (the scalability sweeps live in the
    // bench harness).
    let g = mbpe::bigraph::gen::chung_lu_bipartite(300, 120, 1_500, 2.1, 7);
    println!(
        "graph: |L| = {}, |R| = {}, |E| = {} (Chung-Lu, gamma = 2.1)",
        g.num_left(),
        g.num_right(),
        g.num_edges()
    );
    println!("enumerating maximal {k}-biplexes with both sides >= {theta} ...");

    let mut sink = CollectSink::new();
    let report = Enumerator::new(&g)
        .k(k)
        .algorithm(Algorithm::Large)
        .thresholds(theta, theta)
        .run(&mut sink)
        .expect("valid configuration");
    let mut collected = sink.into_sorted();

    let reduced = report.reduced.expect("large runs report the reduction");
    println!(
        "(θ−k)-core reduced the graph to {} + {} vertices and {} edges",
        reduced.left, reduced.right, reduced.edges
    );
    println!("found {} large MBPs", collected.len());
    collected.sort_by_key(|b| std::cmp::Reverse(b.num_vertices()));
    for b in collected.iter().take(5) {
        println!(
            "  |L| = {:2}, |R| = {:2}, edges = {:3}  L = {:?}",
            b.left.len(),
            b.right.len(),
            b.num_edges(&g),
            b.left
        );
    }
}
