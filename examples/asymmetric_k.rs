//! Asymmetric miss budgets: enumerate maximal (k_L, k_R)-biplexes where the
//! two sides tolerate a different number of missing edges.
//!
//! A practical reading of the budgets in a user × product graph: `k_L`
//! bounds how many of the group's products a member may have skipped, while
//! `k_R` bounds how many members of the group may have skipped a product.
//! Setting `k_R < k_L` asks for products that nearly everyone in the group
//! interacted with, while still being lenient about individual users.
//!
//! Run with: `cargo run --release --example asymmetric_k`

use mbpe::bigraph::gen::er::er_bipartite;
use mbpe::kbiplex::asym::is_maximal_asym_biplex;
use mbpe::prelude::*;

fn main() {
    let g = er_bipartite(14, 14, 80, 7);
    println!("graph: |L| = {}, |R| = {}, |E| = {}", g.num_left(), g.num_right(), g.num_edges());

    // The symmetric budget is the special case k_L = k_R.
    let symmetric = Enumerator::new(&g).k(1).collect().expect("valid configuration");
    let via_asym =
        Enumerator::new(&g).k(1).algorithm(Algorithm::Asym).collect().expect("valid configuration");
    assert_eq!(symmetric, via_asym);
    println!("maximal 1-biplexes (symmetric budget): {}", symmetric.len());

    // Sweep a few asymmetric budgets and report how the solution count and
    // the shape of the largest solution respond.
    for (kl, kr) in [(0, 0), (0, 2), (2, 0), (1, 2), (2, 1), (2, 2)] {
        let kp = KPair::new(kl, kr);
        let mbps = Enumerator::new(&g)
            .algorithm(Algorithm::Asym)
            .k_pair(kp)
            .collect()
            .expect("valid configuration");
        let largest = mbps.iter().max_by_key(|b| b.num_vertices()).cloned().unwrap_or_default();
        for b in &mbps {
            assert!(is_maximal_asym_biplex(&g, &b.left, &b.right, kp));
        }
        println!(
            "(k_L, k_R) = ({kl}, {kr}): {:>4} maximal biplexes, largest |L|x|R| = {}x{}",
            mbps.len(),
            largest.left.len(),
            largest.right.len()
        );
    }
}
