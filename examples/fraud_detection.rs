//! The fraud-detection case study in miniature: inject a camouflage attack
//! into a synthetic review graph and compare how well bicliques, 1-biplexes
//! and the (α,β)-core recover the fake users and products.
//!
//! Run with: `cargo run --release --example fraud_detection`

use mbpe::frauddet::{run_detector, CamouflageScenario, Detector, ScenarioParams};

fn main() {
    // Kept small enough that the exhaustive detectors finish in seconds —
    // the full-scale sweep lives in the `fig13_fraud` bench binary.
    let params = ScenarioParams {
        real_users: 400,
        real_products: 120,
        real_reviews: 1_200,
        fake_users: 30,
        fake_products: 30,
        fake_comments: 360,
        camouflage_comments: 360,
        seed: 11,
    };
    println!(
        "scenario: {} users x {} products, fraud block {} x {}",
        params.real_users + params.fake_users,
        params.real_products + params.fake_products,
        params.fake_users,
        params.fake_products
    );
    let scenario = CamouflageScenario::generate(params);

    let theta_l = 4;
    println!("\n{:<18} {:>4} {:>10} {:>8} {:>6}", "detector", "θR", "precision", "recall", "F1");
    for detector in [
        Detector::Biclique,
        Detector::KBiplex { k: 1 },
        Detector::AlphaBetaCore,
        Detector::DeltaQuasiBiclique { delta: 0.2 },
    ] {
        for theta_r in [3usize, 5] {
            let m = run_detector(&scenario, detector, theta_l, theta_r);
            let p = m.precision.map(|p| format!("{:.2}", p)).unwrap_or_else(|| "ND".into());
            let f1 = m.f1.map(|f| format!("{:.2}", f)).unwrap_or_else(|| "ND".into());
            println!(
                "{:<18} {:>4} {:>10} {:>8.2} {:>6}",
                detector.label(),
                theta_r,
                p,
                m.recall,
                f1
            );
        }
    }
    println!("\n(1-biplexes tolerate the camouflage edges that break exact bicliques,");
    println!(" while staying far denser than the (α,β)-core — the paper's Figure 13 story.)");
}
