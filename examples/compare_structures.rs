//! Compare the cohesive-structure families on one graph: maximal bicliques,
//! maximal k-biplexes, the (α,β)-core, δ-quasi-bicliques and the k-bitruss,
//! reporting how many subgraphs each family finds and how dense they are.
//!
//! Run with: `cargo run --release --example compare_structures`

use mbpe::cohesive::{collect_maximal_bicliques, find_delta_qbs, BicliqueConfig, QuasiConfig};
use mbpe::prelude::*;

fn main() {
    // A planted workload: 3 near-biclique blocks in sparse noise.
    let planted = mbpe::bigraph::gen::planted::planted_biplexes(120, 120, 500, 3, 8, 8, 1, 3);
    let g = &planted.graph;
    println!(
        "graph: |L| = {}, |R| = {}, |E| = {}, planted blocks: {}",
        g.num_left(),
        g.num_right(),
        g.num_edges(),
        planted.blocks.len()
    );

    let (theta_l, theta_r) = (5usize, 5usize);

    let bicliques =
        collect_maximal_bicliques(g, &BicliqueConfig::default().with_min_sizes(theta_l, theta_r));
    println!("\nmaximal bicliques (>= {theta_l} x {theta_r}): {}", bicliques.len());

    for k in [1usize, 2] {
        let mbps = Enumerator::new(g)
            .k(k)
            .algorithm(Algorithm::Large)
            .thresholds(theta_l, theta_r)
            .collect()
            .expect("valid configuration");
        let covered: std::collections::HashSet<u32> =
            mbps.iter().flat_map(|b| b.left.iter().copied()).collect();
        println!(
            "maximal {k}-biplexes (>= {theta_l} x {theta_r}): {} (covering {} left vertices)",
            mbps.len(),
            covered.len()
        );
    }

    let core = mbpe::bigraph::core_decomp::alpha_beta_core(g, theta_r, theta_l);
    println!("({theta_r},{theta_l})-core: {} + {} vertices", core.left.len(), core.right.len());

    let qbs = find_delta_qbs(g, &QuasiConfig::new(0.2, theta_l, theta_r));
    println!("0.2-quasi-bicliques found by the greedy finder: {}", qbs.len());

    let butterflies = mbpe::bigraph::stats::count_butterflies(g);
    let truss_edges = mbpe::cohesive::k_bitruss_edges(g, 4).len();
    println!("butterflies: {butterflies}, edges in the 4-bitruss: {truss_edges}");
}
