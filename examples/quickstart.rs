//! Quickstart: build a small bipartite graph, enumerate its maximal
//! k-biplexes with `iTraversal`, and print them.
//!
//! Run with: `cargo run --release --example quickstart`

use mbpe::prelude::*;

fn main() {
    // A toy author–paper graph: 5 authors (left) × 6 papers (right).
    let edges = [
        (0, 0),
        (0, 1),
        (0, 2),
        (1, 0),
        (1, 1),
        (1, 2),
        (1, 3),
        (2, 1),
        (2, 2),
        (2, 3),
        (3, 3),
        (3, 4),
        (3, 5),
        (4, 4),
        (4, 5),
    ];
    let g = BipartiteGraph::from_edges(5, 6, &edges).expect("well-formed edge list");
    println!("graph: |L| = {}, |R| = {}, |E| = {}", g.num_left(), g.num_right(), g.num_edges());

    for k in 0..=2usize {
        let mbps = enumerate_all(&g, k);
        println!("\nmaximal {k}-biplexes ({}):", mbps.len());
        for b in &mbps {
            assert!(is_maximal_k_biplex(&g, &b.left, &b.right, k));
            println!("  L = {:?}, R = {:?}", b.left, b.right);
        }
    }

    // The enumeration is streaming: stop after the first 3 solutions.
    let mut first = FirstN::new(3);
    let stats = enumerate_mbps(&g, &TraversalConfig::itraversal(1), &mut first);
    println!(
        "\nfirst {} solutions took {} links of the solution graph to find",
        first.len(),
        stats.links
    );
}
