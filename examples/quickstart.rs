//! Quickstart: build a small bipartite graph, enumerate its maximal
//! k-biplexes with `iTraversal`, and print them.
//!
//! Run with: `cargo run --release --example quickstart`

use mbpe::prelude::*;

fn main() {
    // A toy author–paper graph: 5 authors (left) × 6 papers (right).
    let edges = [
        (0, 0),
        (0, 1),
        (0, 2),
        (1, 0),
        (1, 1),
        (1, 2),
        (1, 3),
        (2, 1),
        (2, 2),
        (2, 3),
        (3, 3),
        (3, 4),
        (3, 5),
        (4, 4),
        (4, 5),
    ];
    let g = BipartiteGraph::from_edges(5, 6, &edges).expect("well-formed edge list");
    println!("graph: |L| = {}, |R| = {}, |E| = {}", g.num_left(), g.num_right(), g.num_edges());

    for k in 0..=2usize {
        let mbps = Enumerator::new(&g).k(k).collect().expect("valid configuration");
        println!("\nmaximal {k}-biplexes ({}):", mbps.len());
        for b in &mbps {
            assert!(is_maximal_k_biplex(&g, &b.left, &b.right, k));
            println!("  L = {:?}, R = {:?}", b.left, b.right);
        }
    }

    // The enumeration is streaming: pull the first 3 solutions from a
    // bounded channel and ask the run report why the run stopped.
    let mut stream = Enumerator::new(&g).k(1).limit(3).stream().expect("valid configuration");
    let first: Vec<Biplex> = stream.by_ref().collect();
    let report = stream.finish();
    println!("\nfirst {} solutions, stop reason: {}", first.len(), report.stop);
}
