//! # modelsim — in-tree deterministic concurrency model checker
//!
//! A loom-style checker for the kbiplex lock-free core, vendored offline
//! like the `rand`/`proptest`/`criterion` shims (no external deps, no
//! unsafe code). Test closures run repeatedly under controlled schedules:
//!
//! * **Threads** are real OS threads serialised onto a single run token by
//!   the `exec` scheduler; every model operation is a scheduling point.
//! * **Exploration** is depth-first over the recorded choice tree with a
//!   preemption bound (CHESS-style), followed by a randomized phase
//!   (PCT-flavoured) that samples schedules beyond the bound.
//! * **Memory** follows a C11-ish model: per-location modification orders,
//!   vector-clock happens-before, acquire/release synchronisation and a
//!   floor-based SeqCst approximation — `Relaxed` loads really can read
//!   stale values, so ordering bugs (and deliberately seeded ordering
//!   *mutants*) fail concretely instead of "happening to work".
//! * **Failures** are panics in any model thread, deadlocks (which is how
//!   lost wakeups surface), and replay divergence. Executions that exceed
//!   the step cap are *pruned*, not failed.
//!
//! ```
//! use modelsim::{check, Config};
//! use modelsim::atomic::{AtomicUsize, Ordering};
//!
//! // Message passing: flag published with Release, read with Acquire.
//! let report = check(&Config::default(), || {
//!     let data = AtomicUsize::new(0);
//!     let flag = AtomicUsize::new(0);
//!     modelsim::thread::scope(|s| {
//!         let h = s.spawn(|| {
//!             data.store(42, Ordering::Relaxed);
//!             flag.store(1, Ordering::Release);
//!         });
//!         if flag.load(Ordering::Acquire) == 1 {
//!             assert_eq!(data.load(Ordering::Relaxed), 42);
//!         }
//!         h.join().unwrap();
//!     });
//! })
//! .unwrap();
//! assert!(report.dfs_complete);
//! ```

#![forbid(unsafe_code)]

pub mod atomic;
pub mod clock;
mod exec;
pub mod hint;
mod mutex;
mod once;
pub mod thread;

pub use atomic::Ordering;
pub use exec::current_thread_index;
pub use mutex::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};
pub use once::OnceLock;

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::AtomicBool as StdAtomicBool;
use std::sync::{Arc, Mutex as StdMutex, OnceLock as StdOnceLock, PoisonError};

use exec::{Choice, ExecShared, Limits, Mode};

// ---------------------------------------------------------------------------
// Mutation registry
// ---------------------------------------------------------------------------

static MUTATIONS_ON: StdAtomicBool = StdAtomicBool::new(false);

fn mutation_set() -> &'static StdMutex<HashSet<String>> {
    static SET: StdOnceLock<StdMutex<HashSet<String>>> = StdOnceLock::new();
    SET.get_or_init(|| StdMutex::new(HashSet::new()))
}

/// `true` when the named mutation site is active for the current model run.
/// Production code consults this through an `order!`-style macro so that
/// ordering downgrades can be injected at runtime, without recompiling a
/// mutant binary per site. Always `false` outside [`check`].
pub fn mutation_active(site: &str) -> bool {
    if !MUTATIONS_ON.load(std::sync::atomic::Ordering::Relaxed) {
        return false;
    }
    mutation_set().lock().unwrap_or_else(PoisonError::into_inner).contains(site)
}

fn set_mutations(sites: &[String]) {
    let mut set = mutation_set().lock().unwrap_or_else(PoisonError::into_inner);
    set.clear();
    set.extend(sites.iter().cloned());
    MUTATIONS_ON.store(!sites.is_empty(), std::sync::atomic::Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Public driver API
// ---------------------------------------------------------------------------

/// Exploration budget and knobs for one [`check`] run.
#[derive(Clone, Debug)]
pub struct Config {
    /// Total executions across the DFS and random phases.
    pub max_executions: usize,
    /// Executions budgeted to the DFS phase; the remainder of
    /// `max_executions` goes to the randomized phase. Zero skips DFS
    /// entirely — useful for mutation hunts, where the schedules that
    /// refute a weakened protocol lie beyond the preemption bound.
    pub dfs_executions: usize,
    /// Preemption bound for the DFS phase (involuntary switches per
    /// execution; voluntary yields are free).
    pub dfs_preemptions: usize,
    /// Scheduling/visibility decisions per execution before it is pruned.
    pub max_steps: usize,
    /// Seed for the randomized phase.
    pub seed: u64,
    /// Ordering-mutation sites to activate (see [`mutation_active`]).
    pub mutations: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_executions: 12_000,
            dfs_executions: 6_000,
            dfs_preemptions: 2,
            max_steps: 20_000,
            seed: 0x6b62_6970_6c65_7801,
            mutations: Vec::new(),
        }
    }
}

impl Config {
    /// A smaller budget for quick in-crate sanity tests.
    #[must_use]
    pub fn quick() -> Self {
        Config { max_executions: 1_500, dfs_executions: 750, ..Config::default() }
    }

    /// Activates one ordering-mutation site.
    #[must_use]
    pub fn with_mutation(mut self, site: &str) -> Self {
        self.mutations.push(site.to_owned());
        self
    }
}

/// What a completed (failure-free) [`check`] run explored.
#[derive(Clone, Debug)]
pub struct Report {
    /// Executions run in total.
    pub executions: usize,
    /// Distinct schedules among them (by choice-sequence hash).
    pub distinct: usize,
    /// Executions cut off at the step cap.
    pub pruned: usize,
    /// The DFS phase exhausted the whole preemption-bounded tree.
    pub dfs_complete: bool,
}

/// A failing execution: the first bug found ends the run.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Human-readable description (panic message, deadlock state, …).
    pub message: String,
    /// Which execution failed (0-based).
    pub execution: usize,
    /// Length of the failing schedule's choice sequence.
    pub trace_len: usize,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "model failure at execution {} ({} choices): {}",
            self.execution, self.trace_len, self.message
        )
    }
}

enum Outcome {
    Passed,
    Pruned,
    Failed(String),
}

/// Serialises model runs process-wide: the mutation registry is global and
/// `cargo test` runs tests on multiple threads.
fn model_gate() -> &'static StdMutex<()> {
    static GATE: StdOnceLock<StdMutex<()>> = StdOnceLock::new();
    GATE.get_or_init(|| StdMutex::new(()))
}

/// Runs `f` under every explored schedule. Returns the exploration report,
/// or the first failing execution.
pub fn check<F>(config: &Config, f: F) -> Result<Report, Failure>
where
    F: Fn() + Sync,
{
    let _gate = model_gate().lock().unwrap_or_else(PoisonError::into_inner);
    set_mutations(&config.mutations);
    let result = explore(config, &f);
    set_mutations(&[]);
    result
}

/// [`check`] with the default config, panicking on failure — the
/// loom-style entry point for straightforward protocol tests.
pub fn model<F>(f: F) -> Report
where
    F: Fn() + Sync,
{
    match check(&Config::default(), f) {
        Ok(report) => report,
        Err(failure) => panic!("{failure}"),
    }
}

fn explore<F: Fn() + Sync>(config: &Config, f: &F) -> Result<Report, Failure> {
    let limits = Limits { max_steps: config.max_steps };
    let mut distinct = HashSet::new();
    let mut executions = 0usize;
    let mut pruned = 0usize;
    let mut dfs_complete = false;

    // Phase 1: preemption-bounded DFS over the choice tree. Capped below
    // the whole budget: on state spaces too large to exhaust, the random
    // phase (which roams beyond the preemption bound and resamples value
    // choices) must always get its share — it is the phase that finds bugs
    // buried under schedules the bounded DFS cannot reach in budget.
    let dfs_budget = config.dfs_executions.min(config.max_executions);
    let mut prefix: Vec<Choice> = Vec::new();
    while executions < dfs_budget {
        let mode = Mode::Dfs { preemptions: config.dfs_preemptions, used: 0 };
        let (trace, outcome) = run_one(f, prefix.clone(), mode, limits);
        distinct.insert(trace_hash(&trace));
        let exec_idx = executions;
        executions += 1;
        match outcome {
            Outcome::Failed(message) => {
                return Err(Failure { message, execution: exec_idx, trace_len: trace.len() })
            }
            Outcome::Pruned => pruned += 1,
            Outcome::Passed => {}
        }
        match next_prefix(trace) {
            Some(p) => prefix = p,
            None => {
                dfs_complete = true;
                break;
            }
        }
    }

    // Phase 2: randomized exploration beyond the preemption bound.
    let mut seed = config.seed;
    while executions < config.max_executions {
        // Alternate between uniform per-step scheduling (broad trace
        // diversity) and PCT-style priority scheduling (long uninterrupted
        // runs with rare priority-change points), which together cover both
        // fine-grained races and bugs that need one thread to run far ahead.
        let prio = (executions % 2 == 1).then(Vec::new);
        let (trace, outcome) = run_one(f, Vec::new(), Mode::Random { state: seed, prio }, limits);
        seed = seed.wrapping_mul(0x5851_f42d_4c95_7f2d).wrapping_add(0x1405_7b7e_f767_814f);
        distinct.insert(trace_hash(&trace));
        let exec_idx = executions;
        executions += 1;
        match outcome {
            Outcome::Failed(message) => {
                return Err(Failure { message, execution: exec_idx, trace_len: trace.len() })
            }
            Outcome::Pruned => pruned += 1,
            Outcome::Passed => {}
        }
    }

    Ok(Report { executions, distinct: distinct.len(), pruned, dfs_complete })
}

/// One execution of `f` under one schedule; returns the recorded trace.
fn run_one<F: Fn() + Sync>(
    f: &F,
    prefix: Vec<Choice>,
    mode: Mode,
    limits: Limits,
) -> (Vec<Choice>, Outcome) {
    let shared = Arc::new(ExecShared::new(prefix, mode, limits));
    let root = shared.register_thread(clock::VClock::new());
    debug_assert_eq!(root, 0);
    exec::set_current(Some((shared.clone(), 0)));
    let result = catch_unwind(AssertUnwindSafe(f));
    exec::set_current(None);

    let (trace, failure, was_pruned) = shared.take_outcome();
    let outcome = match (failure, result) {
        // A secondary failure is the scope guard's placeholder; the root
        // panic payload is the real diagnostic when one exists.
        (Some((_, true)), Err(payload)) => Outcome::Failed(panic_message(payload.as_ref())),
        (Some((msg, _)), _) => Outcome::Failed(msg),
        (None, _) if was_pruned => Outcome::Pruned,
        (None, Err(payload)) => Outcome::Failed(panic_message(payload.as_ref())),
        (None, Ok(())) => Outcome::Passed,
    };
    (trace, outcome)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("root thread panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("root thread panicked: {s}")
    } else {
        "root thread panicked".to_owned()
    }
}

/// Standard DFS backtrack: bump the deepest choice that still has unvisited
/// siblings, drop everything after it.
fn next_prefix(mut trace: Vec<Choice>) -> Option<Vec<Choice>> {
    loop {
        let last = trace.last_mut()?;
        if last.chosen + 1 < last.options {
            last.chosen += 1;
            return Some(trace);
        }
        trace.pop();
    }
}

/// FNV-1a over the choice sequence; identifies a schedule.
fn trace_hash(trace: &[Choice]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for c in trace {
        for v in [c.options, c.chosen] {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::atomic::{AtomicBool, AtomicUsize, Ordering};
    use super::*;

    /// Message passing with Release/Acquire is correct: the checker must
    /// not report false positives.
    #[test]
    fn message_passing_release_acquire_passes() {
        let report = check(&Config::quick(), || {
            let data = AtomicUsize::new(0);
            let flag = AtomicBool::new(false);
            thread::scope(|s| {
                let h = s.spawn(|| {
                    data.store(42, Ordering::Relaxed);
                    flag.store(true, Ordering::Release);
                });
                if flag.load(Ordering::Acquire) {
                    assert_eq!(data.load(Ordering::Relaxed), 42, "acquire read stale data");
                }
                h.join().expect("child");
            });
        })
        .expect("release/acquire message passing must pass");
        assert!(report.executions > 1);
    }

    /// The same protocol with a Relaxed publication is broken; the model's
    /// weak memory must expose the stale read.
    #[test]
    fn message_passing_relaxed_fails() {
        let err = check(&Config::quick(), || {
            let data = AtomicUsize::new(0);
            let flag = AtomicBool::new(false);
            thread::scope(|s| {
                let h = s.spawn(|| {
                    data.store(42, Ordering::Relaxed);
                    flag.store(true, Ordering::Relaxed);
                });
                if flag.load(Ordering::Relaxed) {
                    assert_eq!(data.load(Ordering::Relaxed), 42, "stale read");
                }
                h.join().expect("child");
            });
        })
        .expect_err("relaxed message passing must fail");
        assert!(err.message.contains("stale read"), "unexpected failure: {err}");
    }

    /// Two threads CAS-claim the same slot: exactly one may win.
    #[test]
    fn one_winner_cas() {
        let report = check(&Config::quick(), || {
            let slot = AtomicUsize::new(0);
            let wins = AtomicUsize::new(0);
            thread::scope(|s| {
                let (slot, wins) = (&slot, &wins);
                let handles: Vec<_> = (1..=2)
                    .map(|id| {
                        s.spawn(move || {
                            if slot
                                .compare_exchange(0, id, Ordering::AcqRel, Ordering::Acquire)
                                .is_ok()
                            {
                                wins.fetch_add(1, Ordering::Relaxed);
                            }
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().expect("child");
                }
                assert_eq!(wins.load(Ordering::Acquire), 1, "exactly one CAS winner");
                assert_ne!(slot.load(Ordering::Acquire), 0);
            });
        })
        .expect("one-winner CAS must pass");
        assert!(report.dfs_complete || report.distinct > 100);
    }

    /// A guaranteed lost wakeup (wait without rechecking under the lock)
    /// must surface as a deadlock, not hang the test binary.
    #[test]
    fn lost_wakeup_detected_as_deadlock() {
        let err = check(&Config::quick(), || {
            let m = Mutex::new(false);
            let cv = Condvar::new();
            thread::scope(|s| {
                let h = s.spawn(|| {
                    // Broken waiter: no predicate at all; when the notify
                    // fires before this wait starts, it is lost and the
                    // wait never returns.
                    let g = m.lock().expect("lock");
                    let _g = cv.wait(g).expect("wait");
                });
                {
                    let mut g = m.lock().expect("lock");
                    *g = true;
                }
                cv.notify_one();
                h.join().expect("child");
            });
        })
        .expect_err("lost wakeup must be detected");
        assert!(err.message.contains("deadlock"), "unexpected failure: {err}");
    }

    /// Condvar with a predicate loop and notify-under-lock is sound.
    #[test]
    fn condvar_predicate_loop_passes() {
        check(&Config::quick(), || {
            let m = Mutex::new(0usize);
            let cv = Condvar::new();
            thread::scope(|s| {
                let h = s.spawn(|| {
                    let mut g = m.lock().expect("lock");
                    while *g == 0 {
                        g = cv.wait(g).expect("wait");
                    }
                    assert_eq!(*g, 7);
                });
                {
                    let mut g = m.lock().expect("lock");
                    *g = 7;
                    cv.notify_one();
                }
                h.join().expect("child");
            });
        })
        .expect("predicate-loop condvar must pass");
    }

    /// OnceLock: concurrent setters — one winner, and any thread that
    /// observes a loss can immediately read the winning value.
    #[test]
    fn once_lock_single_winner() {
        check(&Config::quick(), || {
            let cell: OnceLock<usize> = OnceLock::new();
            let wins = AtomicUsize::new(0);
            thread::scope(|s| {
                let (cell, wins) = (&cell, &wins);
                let handles: Vec<_> = (1..=2)
                    .map(|id| {
                        s.spawn(move || {
                            if cell.set(id).is_ok() {
                                wins.fetch_add(1, Ordering::Relaxed);
                            } else {
                                // Loser: the winner's value must be visible
                                // (set's failure path has acquire order).
                                let v = *cell.get().expect("value after lost set");
                                assert!((1..=2).contains(&v));
                            }
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().expect("child");
                }
                assert_eq!(wins.load(Ordering::Acquire), 1);
            });
        })
        .expect("once-lock single winner must pass");
    }

    /// Mutation registry: a site is active only inside a configured run.
    #[test]
    fn mutation_registry_scoping() {
        assert!(!mutation_active("demo-site"));
        let observed = std::sync::Mutex::new(false);
        check(&Config::quick().with_mutation("demo-site"), || {
            if mutation_active("demo-site") {
                *observed.lock().expect("poisoned") = true;
            }
        })
        .expect("no failure");
        assert!(*observed.lock().expect("poisoned"));
        assert!(!mutation_active("demo-site"));
    }

    /// The DFS phase must fully exhaust small protocols.
    #[test]
    fn small_protocol_dfs_completes() {
        let report = check(&Config::default(), || {
            let a = AtomicUsize::new(0);
            thread::scope(|s| {
                let h = s.spawn(|| {
                    a.fetch_add(1, Ordering::SeqCst);
                });
                a.fetch_add(1, Ordering::SeqCst);
                h.join().expect("child");
                assert_eq!(a.load(Ordering::SeqCst), 2);
            });
        })
        .expect("counter must pass");
        assert!(report.dfs_complete, "tiny protocol should exhaust: {report:?}");
    }
}
