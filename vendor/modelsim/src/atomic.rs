//! Model replacements for `std::sync::atomic` types.
//!
//! Inside a model execution every operation is a scheduling point and
//! reads/writes go through the vector-clock visibility model in
//! the `exec` scheduler — so a `Relaxed` load really can observe a stale value,
//! which is what gives ordering mutants a way to fail. Outside an execution
//! the types degrade to mutex-protected scalars, so library code compiled
//! with the model backend still runs correctly (if slowly) under ordinary
//! tests.

use crate::exec::AtomicCell;

/// Memory orderings, mirroring `std::sync::atomic::Ordering` so facade
/// call sites compile unchanged against either backend.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Ordering {
    /// No synchronisation; only the modification order of the one location.
    Relaxed,
    /// Loads join the release clock of the store they read.
    Acquire,
    /// Stores publish the writer's clock for acquire loads to join.
    Release,
    /// Both of the above (read-modify-write operations).
    AcqRel,
    /// Acquire/release plus participation in the single SC order: an
    /// `SeqCst` load cannot read anything older than the newest `SeqCst`
    /// store.
    SeqCst,
}

macro_rules! int_atomic {
    ($(#[$doc:meta])* $name:ident, $prim:ty) => {
        $(#[$doc])*
        pub struct $name {
            cell: AtomicCell,
        }

        impl $name {
            /// Creates a new atomic (const, usable in statics).
            #[must_use]
            pub const fn new(v: $prim) -> Self {
                $name { cell: AtomicCell::new(v as u64) }
            }

            /// Loads the value under the model's visibility rules.
            pub fn load(&self, ord: Ordering) -> $prim {
                self.cell.load(ord) as $prim
            }

            /// Stores a value, appending to the modification order.
            pub fn store(&self, v: $prim, ord: Ordering) {
                self.cell.store(v as u64, ord);
            }

            /// Atomically replaces the value, returning the previous one.
            pub fn swap(&self, v: $prim, ord: Ordering) -> $prim {
                self.cell.rmw(ord, ord, |_| Some(v as u64)) as $prim
            }

            /// Atomically adds, returning the previous value.
            pub fn fetch_add(&self, v: $prim, ord: Ordering) -> $prim {
                self.cell.rmw(ord, ord, |old| Some(old.wrapping_add(v as u64))) as $prim
            }

            /// Atomically subtracts, returning the previous value.
            pub fn fetch_sub(&self, v: $prim, ord: Ordering) -> $prim {
                self.cell.rmw(ord, ord, |old| Some(old.wrapping_sub(v as u64))) as $prim
            }

            /// Atomically takes the maximum, returning the previous value.
            pub fn fetch_max(&self, v: $prim, ord: Ordering) -> $prim {
                self.cell
                    .rmw(ord, ord, |old| Some((old as $prim).max(v) as u64))
                    as $prim
            }

            /// Strong compare-exchange; failed exchanges still read the
            /// newest store (RMW atomicity), so `Ok`/`Err` match `std`.
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                let old = self.cell.rmw(success, failure, |old| {
                    (old as $prim == current).then_some(new as u64)
                }) as $prim;
                if old == current {
                    Ok(old)
                } else {
                    Err(old)
                }
            }

            /// The model checker has no spurious CAS failures, so weak
            /// compare-exchange is the strong one.
            pub fn compare_exchange_weak(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                self.compare_exchange(current, new, success, failure)
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(0 as $prim)
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}({})", stringify!($name), self.cell.load_latest() as $prim)
            }
        }
    };
}

int_atomic!(
    /// Model `AtomicUsize`.
    AtomicUsize,
    usize
);
int_atomic!(
    /// Model `AtomicU64`.
    AtomicU64,
    u64
);
int_atomic!(
    /// Model `AtomicU32`.
    AtomicU32,
    u32
);

/// Model `AtomicBool`.
pub struct AtomicBool {
    cell: AtomicCell,
}

impl AtomicBool {
    /// Creates a new atomic bool (const, usable in statics).
    #[must_use]
    pub const fn new(v: bool) -> Self {
        AtomicBool { cell: AtomicCell::new(v as u64) }
    }

    /// Loads the value under the model's visibility rules.
    pub fn load(&self, ord: Ordering) -> bool {
        self.cell.load(ord) != 0
    }

    /// Stores a value, appending to the modification order.
    pub fn store(&self, v: bool, ord: Ordering) {
        self.cell.store(v as u64, ord);
    }

    /// Atomically replaces the value, returning the previous one.
    pub fn swap(&self, v: bool, ord: Ordering) -> bool {
        self.cell.rmw(ord, ord, |_| Some(v as u64)) != 0
    }

    /// Strong compare-exchange, mirroring `std`.
    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        let old =
            self.cell.rmw(success, failure, |old| ((old != 0) == current).then_some(new as u64))
                != 0;
        if old == current {
            Ok(old)
        } else {
            Err(old)
        }
    }
}

impl Default for AtomicBool {
    fn default() -> Self {
        Self::new(false)
    }
}

impl std::fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AtomicBool({})", self.cell.load_latest() != 0)
    }
}
