//! Model replacement for `std::hint`.

/// Spin-wait hint. Under the model a spin is a voluntary yield — the
/// scheduler must let the spun-on thread run or the loop would never end.
pub fn spin_loop() {
    match crate::exec::current() {
        Some((exec, me)) => exec.schedule(me, true),
        None => std::hint::spin_loop(),
    }
}
