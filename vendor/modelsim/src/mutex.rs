//! Model `Mutex` and `Condvar`.
//!
//! Inside an execution, lock/unlock and wait/notify are scheduling points
//! driven by the `exec` scheduler: blocking hands the token over, unlock wakes
//! every waiter (they re-contend), `notify_one` picks its winner through a
//! recorded model choice, and a `wait_timeout` sleeper can be woken by the
//! scheduler at any point — the timeout firing is just another explored
//! interleaving, which is how lost-wakeup bugs surface as deadlocks.
//! Happens-before is carried by the mutex: unlock publishes the holder's
//! clock and the next acquirer joins it.
//!
//! Outside an execution both types delegate to their `std` counterparts.

use std::sync::{LockResult, PoisonError, TryLockError, TryLockResult};
use std::time::Duration;

use crate::clock::VClock;
use crate::exec::{self, BlockOn, ExecHandle, NEXT_OBJ_ID};

struct ModelState {
    locked: bool,
    /// Clock published by the last unlock; joined by the next acquirer.
    rel: VClock,
}

/// Model mutex; API mirrors `std::sync::Mutex` (poisoning never occurs in
/// the model — failed executions abort the whole run instead).
pub struct Mutex<T: ?Sized> {
    id: u64,
    model: std::sync::Mutex<ModelState>,
    data: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new model mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            id: NEXT_OBJ_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            model: std::sync::Mutex::new(ModelState { locked: false, rel: VClock::new() }),
            data: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> LockResult<T> {
        self.data.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    fn state(&self) -> std::sync::MutexGuard<'_, ModelState> {
        self.model.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires the model-level lock, blocking (in model time) until free.
    /// Must be called while holding the token; no initial schedule point.
    fn acquire_model(&self, exec: &ExecHandle, me: usize) {
        loop {
            {
                let mut st = self.state();
                if !st.locked {
                    st.locked = true;
                    let rel = st.rel.clone();
                    drop(st);
                    exec.join_clock(me, &rel);
                    return;
                }
            }
            exec.block(me, BlockOn::Mutex(self.id));
        }
    }

    /// Releases the model-level lock and wakes contenders. No schedule
    /// point (safe to run from guard drops during unwinding); the next
    /// operation of this thread is the switch opportunity.
    fn release_model(&self, exec: &ExecHandle, me: usize) {
        let clock = exec.tick_clock(me);
        {
            let mut st = self.state();
            st.locked = false;
            st.rel = clock;
        }
        let id = self.id;
        exec.wake_where(|why| matches!(why, BlockOn::Mutex(i) if *i == id));
    }

    /// Locks the mutex. A scheduling point; blocks in model time while
    /// another model thread holds it.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match exec::current() {
            None => {
                let inner = self.data.lock().unwrap_or_else(PoisonError::into_inner);
                Ok(MutexGuard { inner: Some(inner), lock: self, ctx: None })
            }
            Some((exec, me)) => {
                exec.schedule(me, false);
                self.acquire_model(&exec, me);
                // Uncontended by construction: the model grants exclusivity
                // before we touch the std mutex.
                let inner = self.data.lock().unwrap_or_else(PoisonError::into_inner);
                Ok(MutexGuard { inner: Some(inner), lock: self, ctx: Some((exec, me)) })
            }
        }
    }

    /// Attempts the lock without blocking. Still a scheduling point.
    pub fn try_lock(&self) -> TryLockResult<MutexGuard<'_, T>> {
        match exec::current() {
            None => match self.data.try_lock() {
                Ok(inner) => Ok(MutexGuard { inner: Some(inner), lock: self, ctx: None }),
                Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
                Err(TryLockError::Poisoned(e)) => {
                    Ok(MutexGuard { inner: Some(e.into_inner()), lock: self, ctx: None })
                }
            },
            Some((exec, me)) => {
                exec.schedule(me, false);
                {
                    let mut st = self.state();
                    if st.locked {
                        return Err(TryLockError::WouldBlock);
                    }
                    st.locked = true;
                    let rel = st.rel.clone();
                    drop(st);
                    exec.join_clock(me, &rel);
                }
                let inner = self.data.lock().unwrap_or_else(PoisonError::into_inner);
                Ok(MutexGuard { inner: Some(inner), lock: self, ctx: Some((exec, me)) })
            }
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// Guard mirroring `std::sync::MutexGuard`. The std guard is held in an
/// `Option` so drop order is explicit: data lock first, then model unlock.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
    lock: &'a Mutex<T>,
    ctx: Option<(ExecHandle, usize)>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after release")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard accessed after release")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the std lock before the model-level unlock makes other
        // threads eligible to take it.
        self.inner = None;
        if let Some((exec, me)) = self.ctx.take() {
            self.lock.release_model(&exec, me);
        }
    }
}

/// Result of a `wait_timeout`, constructible by both backends (unlike
/// `std::sync::WaitTimeoutResult`).
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` when the wait ended because the timeout elapsed.
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Model condition variable; API mirrors `std::sync::Condvar`.
pub struct Condvar {
    id: u64,
    std: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new model condvar.
    #[must_use]
    pub fn new() -> Self {
        Condvar {
            id: NEXT_OBJ_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            std: std::sync::Condvar::new(),
        }
    }

    fn wait_model<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        timeout: bool,
    ) -> (MutexGuard<'a, T>, bool) {
        let (exec, me) = guard.ctx.clone().expect("model wait on fallback guard");
        let lock = guard.lock;
        // Register the wait *before* releasing the mutex; the token is held
        // throughout, so unlock-and-sleep is atomic w.r.t. notifiers.
        let why =
            if timeout { BlockOn::CondvarTimeout(self.id) } else { BlockOn::Condvar(self.id) };
        exec.set_blocked(me, why);
        guard.inner = None;
        guard.ctx = None; // neutralise the guard's drop
        lock.release_model(&exec, me);
        drop(guard);
        let timed_out = exec.yield_blocked(me);
        // Re-acquire: we already hold the token, contend at model level.
        lock.acquire_model(&exec, me);
        let inner = lock.data.lock().unwrap_or_else(PoisonError::into_inner);
        (MutexGuard { inner: Some(inner), lock, ctx: Some((exec, me)) }, timed_out)
    }

    /// Blocks until notified. A lost wakeup shows up as a model deadlock.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        if guard.ctx.is_some() {
            let (guard, _) = self.wait_model(guard, false);
            Ok(guard)
        } else {
            let mut guard = guard;
            let inner = guard.inner.take().expect("guard accessed after release");
            let lock = guard.lock;
            guard.ctx = None;
            drop(guard);
            let inner = self.std.wait(inner).unwrap_or_else(PoisonError::into_inner);
            Ok(MutexGuard { inner: Some(inner), lock, ctx: None })
        }
    }

    /// Blocks until notified or the (modeled) timeout fires; the scheduler
    /// may deliver the timeout at any explored point.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        if guard.ctx.is_some() {
            let (guard, timed_out) = self.wait_model(guard, true);
            Ok((guard, WaitTimeoutResult(timed_out)))
        } else {
            let mut guard = guard;
            let inner = guard.inner.take().expect("guard accessed after release");
            let lock = guard.lock;
            guard.ctx = None;
            drop(guard);
            let (inner, res) =
                self.std.wait_timeout(inner, dur).unwrap_or_else(PoisonError::into_inner);
            Ok((
                MutexGuard { inner: Some(inner), lock, ctx: None },
                WaitTimeoutResult(res.timed_out()),
            ))
        }
    }

    /// Wakes one waiter; which one is a recorded model choice.
    pub fn notify_one(&self) {
        if let Some((exec, me)) = exec::current() {
            exec.schedule(me, false);
            exec.wake_one_condvar(self.id);
        } else {
            self.std.notify_one();
        }
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        if let Some((exec, me)) = exec::current() {
            exec.schedule(me, false);
            let id = self.id;
            exec.wake_where(
                |why| matches!(why, BlockOn::Condvar(i) | BlockOn::CondvarTimeout(i) if *i == id),
            );
        } else {
            self.std.notify_all();
        }
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}
