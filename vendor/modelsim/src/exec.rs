//! The execution engine: a cooperative scheduler that serialises model
//! threads onto a single token and explores the tree of scheduling /
//! visibility choices, plus the vector-clock memory model shared by every
//! model synchronisation type.
//!
//! # Scheduling
//!
//! Model threads are real OS threads, but at most one ever runs: every
//! model operation (atomic access, mutex acquire, condvar wait, …) first
//! calls [`ExecHandle::schedule`], which consults the current *trace* — the
//! recorded sequence of choices — and either keeps the token or hands it to
//! another runnable thread. Replaying a trace prefix reproduces an
//! execution exactly; extending past the prefix records new choices, and
//! depth-first backtracking over recorded choices enumerates distinct
//! interleavings. Exploration is *preemption-bounded* in DFS mode (CHESS
//! style): involuntary switches at non-yield points consume a budget, which
//! keeps the tree tractable while still covering the racy interleavings
//! low preemption counts express. A randomized mode (uniform choice at
//! every point, seeded) explores beyond the bound.
//!
//! # Memory model
//!
//! Each atomic location keeps its full modification order as a list of
//! [`StoreRec`]s carrying the storing thread's vector clock. A load may
//! read any store that coherence does not forbid: everything from the
//! newest store that *happens before* the load onwards (and never older
//! than a store the thread already read — per-thread floors). `Acquire`
//! loads join the release clock of the store they read; `SeqCst` loads are
//! additionally floored at the newest `SeqCst` store, approximating the
//! single total order of SC operations. Read-modify-writes always operate
//! on the newest store (atomicity) and continue release sequences. The
//! model is therefore *weaker* than the hardware you run on — `Relaxed`
//! loads really do return stale values — which is exactly what makes
//! ordering-downgrade mutants detectable.

use std::sync::atomic::{AtomicBool as StdAtomicBool, AtomicU64 as StdAtomicU64};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

use crate::clock::VClock;
use crate::Ordering;

/// Hard cap on model threads per execution (root + spawned).
pub const MAX_THREADS: usize = 16;

/// Message used when an execution is being torn down; blocked threads
/// unwind with it so the whole thread scope collapses quickly.
pub(crate) const ABORT_MSG: &str = "modelsim: execution aborted";

/// Why a thread is not currently schedulable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum BlockOn {
    /// Waiting to acquire the model mutex with this id.
    Mutex(u64),
    /// Waiting on the condvar with this id (infinite wait).
    Condvar(u64),
    /// Waiting on the condvar with this id, but with a timeout: the
    /// scheduler may wake it at any point (the timeout firing).
    CondvarTimeout(u64),
    /// Waiting for the thread with this id to finish.
    Join(usize),
}

/// Scheduler state of one model thread.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Run {
    Runnable,
    Blocked(BlockOn),
    Finished,
}

pub(crate) struct ThreadState {
    pub state: Run,
    /// The thread's happens-before frontier.
    pub clock: VClock,
    /// Set when the thread was woken from a `CondvarTimeout` wait by the
    /// scheduler (i.e. its timeout fired) rather than by a notification.
    pub timed_out: bool,
    /// Final clock of a finished thread, joined by `join()`.
    pub final_clock: Option<VClock>,
}

/// One recorded decision. `options` is remembered so replay can detect
/// divergence (a model bug) and backtracking knows the branching factor.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Choice {
    pub options: u32,
    pub chosen: u32,
}

/// Exploration mode of one execution.
pub(crate) enum Mode {
    /// Depth-first systematic exploration with a preemption budget.
    Dfs { preemptions: usize, used: usize },
    /// Randomized exploration from a seeded generator; no bound. With
    /// `prio: None`, every scheduling point is a fresh uniform choice —
    /// maximal trace diversity, but the probability of one thread running
    /// `k` consecutive steps decays exponentially in `k`. With
    /// `prio: Some`, scheduling is PCT-style: each thread gets a random
    /// priority at spawn, the highest-priority runnable thread always
    /// runs, and the running thread's priority is redrawn with small
    /// probability per step — so long uninterrupted runs punctuated by a
    /// few context switches are the *default*, which is the schedule shape
    /// that exposes bugs where one thread must stall across another's
    /// entire critical phase. Value choices stay uniform in both.
    Random { state: u64, prio: Option<Vec<u64>> },
}

/// Per-execution limits (from [`crate::Config`]).
#[derive(Clone, Copy)]
pub(crate) struct Limits {
    pub max_steps: usize,
}

pub(crate) struct ExecInner {
    pub threads: Vec<ThreadState>,
    /// Thread currently holding the run token.
    pub active: usize,
    pub trace: Vec<Choice>,
    /// Next trace index to replay; past the end, choices are recorded.
    pub pos: usize,
    pub mode: Mode,
    pub limits: Limits,
    pub steps: usize,
    /// First failure observed (assertion/panic/deadlock); ends exploration.
    pub failure: Option<String>,
    /// The recorded failure is a generic tear-down message; a root panic
    /// payload, if any, is the better diagnostic.
    pub secondary_failure: bool,
    /// The execution hit its step cap (treated as pruned, not failed).
    pub pruned: bool,
    /// Tear-down flag: every wait loop exits by panicking when set.
    pub abort: bool,
}

/// The shared execution context handed to every model thread.
pub struct ExecShared {
    pub(crate) inner: StdMutex<ExecInner>,
    pub(crate) cv: StdCondvar,
}

/// Cheap clonable handle; thread-locals hold one per participating thread.
pub type ExecHandle = Arc<ExecShared>;

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(ExecHandle, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The execution the calling thread participates in, if any.
pub(crate) fn current() -> Option<(ExecHandle, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Model-thread id of the calling thread (0 outside a model run).
pub fn current_thread_index() -> usize {
    CURRENT.with(|c| c.borrow().as_ref().map(|(_, tid)| *tid).unwrap_or(0))
}

/// Installs/clears the calling thread's execution context.
pub(crate) fn set_current(ctx: Option<(ExecHandle, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = ctx);
}

fn lock(shared: &ExecShared) -> StdMutexGuard<'_, ExecInner> {
    // Model threads panic by design on failed executions; the scheduler
    // state stays consistent, so poisoning is ignored.
    shared.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// xorshift-free SplitMix64 step for the random exploration mode.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ExecInner {
    /// Replays or extends the trace with an `n`-way choice.
    fn choose(&mut self, n: u32) -> u32 {
        debug_assert!(n >= 2, "single-option points must not consume a choice");
        if self.pos < self.trace.len() {
            let c = self.trace[self.pos];
            self.pos += 1;
            if c.options != n {
                // Divergent replay means the program under test is not
                // deterministic given the schedule — a model-usage bug.
                self.fail(format!(
                    "modelsim: replay divergence at choice {} ({} options recorded, {} now)",
                    self.pos - 1,
                    c.options,
                    n
                ));
                return 0;
            }
            c.chosen.min(n - 1)
        } else {
            let chosen = match &mut self.mode {
                Mode::Dfs { .. } => 0,
                Mode::Random { state, .. } => (splitmix(state) % n as u64) as u32,
            };
            self.trace.push(Choice { options: n, chosen });
            self.pos += 1;
            chosen
        }
    }

    /// Records a scheduling decision made outside the uniform chooser (the
    /// PCT priority scheduler), keeping the trace a complete record of the
    /// schedule so replay and distinct-schedule counting stay exact.
    fn choose_forced(&mut self, n: u32, pick: u32) -> u32 {
        if self.pos < self.trace.len() {
            let c = self.trace[self.pos];
            self.pos += 1;
            if c.options != n {
                self.fail(format!(
                    "modelsim: replay divergence at choice {} ({} options recorded, {} now)",
                    self.pos - 1,
                    c.options,
                    n
                ));
                return 0;
            }
            c.chosen.min(n - 1)
        } else {
            self.trace.push(Choice { options: n, chosen: pick });
            self.pos += 1;
            pick
        }
    }

    /// `true` when this execution runs under the PCT priority scheduler.
    fn is_pct(&self) -> bool {
        matches!(self.mode, Mode::Random { prio: Some(_), .. })
    }

    /// PCT priority-change point: with small probability per step the
    /// running thread's priority is redrawn, so every run eventually ends
    /// but long uninterrupted runs stay the common case.
    fn pct_maybe_demote(&mut self, me: usize) {
        if let Mode::Random { state, prio: Some(prio) } = &mut self.mode {
            if splitmix(state).is_multiple_of(32) {
                prio[me] = splitmix(state);
            }
        }
    }

    /// PCT step: `0` to keep running `me`, `i + 1` to switch to
    /// `others[i]` — whichever holds the highest priority.
    fn pct_pick(&mut self, me: usize, others: &[usize]) -> u32 {
        self.pct_maybe_demote(me);
        let Mode::Random { prio: Some(prio), .. } = &self.mode else { return 0 };
        let mut pick = 0u32;
        let mut best = prio[me];
        for (i, &tid) in others.iter().enumerate() {
            if prio[tid] > best {
                best = prio[tid];
                pick = (i + 1) as u32;
            }
        }
        pick
    }

    /// PCT step at a point where `me` cannot continue (yield, block):
    /// index of the highest-priority candidate.
    fn pct_pick_others(&self, others: &[usize]) -> u32 {
        let Mode::Random { prio: Some(prio), .. } = &self.mode else { return 0 };
        let mut pick = 0usize;
        for (i, &tid) in others.iter().enumerate() {
            if prio[tid] > prio[others[pick]] {
                pick = i;
            }
        }
        pick as u32
    }

    /// Records the first failure and flips the tear-down flag.
    pub(crate) fn fail(&mut self, msg: String) {
        if self.failure.is_none() {
            self.failure = Some(msg);
        }
        self.abort = true;
    }

    /// Other threads the scheduler may hand the token to.
    fn candidates(&self, me: usize) -> Vec<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(tid, t)| {
                *tid != me
                    && matches!(t.state, Run::Runnable | Run::Blocked(BlockOn::CondvarTimeout(_)))
            })
            .map(|(tid, _)| tid)
            .collect()
    }

    /// Hands the token to `next`, waking a timeout waiter if that is what
    /// was chosen.
    fn grant(&mut self, next: usize) {
        if let Run::Blocked(BlockOn::CondvarTimeout(_)) = self.threads[next].state {
            self.threads[next].state = Run::Runnable;
            self.threads[next].timed_out = true;
        }
        self.active = next;
    }
}

impl ExecShared {
    pub(crate) fn new(prefix: Vec<Choice>, mode: Mode, limits: Limits) -> Self {
        ExecShared {
            inner: StdMutex::new(ExecInner {
                threads: Vec::new(),
                active: 0,
                trace: prefix,
                pos: 0,
                mode,
                limits,
                steps: 0,
                failure: None,
                secondary_failure: false,
                pruned: false,
                abort: false,
            }),
            cv: StdCondvar::new(),
        }
    }

    /// Registers a new model thread whose clock starts at `parent_clock`
    /// (the happens-before edge of the spawn); returns its id.
    pub(crate) fn register_thread(&self, parent_clock: VClock) -> usize {
        let mut inner = lock(self);
        let tid = inner.threads.len();
        assert!(tid < MAX_THREADS, "modelsim: more than {MAX_THREADS} model threads");
        let mut clock = parent_clock;
        clock.tick(tid);
        inner.threads.push(ThreadState {
            state: Run::Runnable,
            clock,
            timed_out: false,
            final_clock: None,
        });
        if let Mode::Random { state, prio: Some(prio) } = &mut inner.mode {
            prio.push(splitmix(state));
        }
        tid
    }

    /// Snapshot of the calling thread's clock.
    pub(crate) fn clock_of(&self, tid: usize) -> VClock {
        lock(self).threads[tid].clock.clone()
    }

    /// Ticks `tid`'s clock and returns the snapshot (store/release events).
    pub(crate) fn tick_clock(&self, tid: usize) -> VClock {
        let mut inner = lock(self);
        inner.threads[tid].clock.tick(tid);
        inner.threads[tid].clock.clone()
    }

    /// Joins `other` into `tid`'s clock (acquire events).
    pub(crate) fn join_clock(&self, tid: usize, other: &VClock) {
        lock(self).threads[tid].clock.join(other);
    }

    /// A scheduling point. `yield_hint` marks voluntary descheduling
    /// (`yield_now`, `spin_loop`, `sleep`): the thread *prefers* to switch,
    /// a switch costs no preemption budget, and in DFS mode the switch is
    /// mandatory when another thread can run (so spin loops always let the
    /// spun-on thread make progress).
    pub(crate) fn schedule(&self, me: usize, yield_hint: bool) {
        // Teardown mode: a thread already unwinding (the abort panic or a
        // protocol assertion) must run its destructors to completion, so
        // model ops it performs on the way out skip scheduling entirely —
        // panicking here again would be a fatal double panic.
        if std::thread::panicking() {
            return;
        }
        let mut inner = lock(self);
        if inner.abort {
            drop(inner);
            panic!("{ABORT_MSG}");
        }
        inner.steps += 1;
        if inner.steps > inner.limits.max_steps {
            inner.pruned = true;
            inner.abort = true;
            self.cv.notify_all();
            drop(inner);
            panic!("{ABORT_MSG}");
        }
        let others = inner.candidates(me);
        let next = if others.is_empty() {
            me
        } else if yield_hint {
            // Forced switch: pick among the others only.
            let idx = if others.len() == 1 {
                0
            } else if inner.is_pct() {
                let pick = inner.pct_pick_others(&others);
                inner.choose_forced(others.len() as u32, pick) as usize
            } else {
                inner.choose(others.len() as u32) as usize
            };
            others[idx]
        } else {
            let preempt_ok = match &inner.mode {
                Mode::Dfs { preemptions, used } => used < preemptions,
                Mode::Random { .. } => true,
            };
            if !preempt_ok {
                me
            } else if inner.is_pct() {
                let pick = inner.pct_pick(me, &others);
                let idx = inner.choose_forced((others.len() + 1) as u32, pick) as usize;
                if idx == 0 {
                    me
                } else {
                    others[idx - 1]
                }
            } else {
                let n = (others.len() + 1) as u32;
                let idx = inner.choose(n) as usize;
                if idx == 0 {
                    me
                } else {
                    if let Mode::Dfs { used, .. } = &mut inner.mode {
                        *used += 1;
                    }
                    others[idx - 1]
                }
            }
        };
        if next != me {
            inner.grant(next);
            self.cv.notify_all();
            self.wait_for_token(inner, me);
        }
    }

    /// Marks the calling thread blocked *without* giving up the token yet.
    /// Condvar waits need this split: the wait must register before the
    /// mutex is released so no notification can slip between unlock and
    /// sleep (the thread keeps the token throughout, so the two steps are
    /// atomic with respect to every other model thread).
    pub(crate) fn set_blocked(&self, me: usize, why: BlockOn) {
        let mut inner = lock(self);
        inner.threads[me].state = Run::Blocked(why);
        inner.threads[me].timed_out = false;
    }

    /// Blocks the calling thread on `why` and hands the token over; returns
    /// once the thread is runnable *and* holds the token again. Returns
    /// `true` if the wakeup was a modeled timeout.
    pub(crate) fn block(&self, me: usize, why: BlockOn) -> bool {
        // Teardown mode: never park a thread that is unwinding (see
        // [`Self::schedule`]) — report a spurious wakeup instead.
        if std::thread::panicking() {
            return false;
        }
        self.set_blocked(me, why);
        self.yield_blocked(me)
    }

    /// Second half of [`Self::block`]: hands the token to another thread
    /// and parks until woken and granted again.
    pub(crate) fn yield_blocked(&self, me: usize) -> bool {
        let mut inner = lock(self);
        if inner.abort {
            drop(inner);
            panic!("{ABORT_MSG}");
        }
        let others = inner.candidates(me);
        if others.is_empty() {
            let stuck: Vec<_> = inner
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| !matches!(t.state, Run::Finished))
                .map(|(tid, t)| (tid, t.state.clone()))
                .collect();
            inner.fail(format!(
                "deadlock: all {} unfinished threads are blocked ({stuck:?})",
                stuck.len()
            ));
            self.cv.notify_all();
            drop(inner);
            panic!("{ABORT_MSG}");
        }
        let idx = if others.len() == 1 {
            0
        } else if inner.is_pct() {
            let pick = inner.pct_pick_others(&others);
            inner.choose_forced(others.len() as u32, pick) as usize
        } else {
            inner.choose(others.len() as u32) as usize
        };
        inner.grant(others[idx]);
        self.cv.notify_all();
        self.wait_for_token(inner, me);
        let mut inner = lock(self);
        let timed_out = inner.threads[me].timed_out;
        inner.threads[me].timed_out = false;
        timed_out
    }

    /// Marks threads blocked on `pred` runnable (they still need to be
    /// granted the token before resuming).
    pub(crate) fn wake_where(&self, pred: impl Fn(&BlockOn) -> bool) {
        let mut inner = lock(self);
        for t in inner.threads.iter_mut() {
            if let Run::Blocked(why) = &t.state {
                if pred(why) {
                    t.state = Run::Runnable;
                }
            }
        }
        self.cv.notify_all();
    }

    /// Wakes exactly one thread blocked on a condvar (`notify_one`). Which
    /// waiter wins is a recorded model choice. Returns `true` if a waiter
    /// existed.
    pub(crate) fn wake_one_condvar(&self, cv_id: u64) -> bool {
        let mut inner = lock(self);
        let waiters: Vec<usize> = inner
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                matches!(
                    &t.state,
                    Run::Blocked(BlockOn::Condvar(id) | BlockOn::CondvarTimeout(id)) if *id == cv_id
                )
            })
            .map(|(tid, _)| tid)
            .collect();
        if waiters.is_empty() {
            return false;
        }
        let idx = if waiters.len() == 1 { 0 } else { inner.choose(waiters.len() as u32) as usize };
        inner.threads[waiters[idx]].state = Run::Runnable;
        self.cv.notify_all();
        true
    }

    /// Marks the calling thread finished, records its final clock for
    /// joiners, wakes them, and passes the token on. `panicked` aborts the
    /// whole execution (the panic is the failure).
    pub(crate) fn finish_thread(&self, me: usize, panicked: bool) {
        let mut inner = lock(self);
        inner.threads[me].state = Run::Finished;
        let final_clock = inner.threads[me].clock.clone();
        inner.threads[me].final_clock = Some(final_clock);
        if panicked && !inner.pruned {
            inner.fail(format!("model thread {me} panicked"));
        }
        for t in inner.threads.iter_mut() {
            if matches!(&t.state, Run::Blocked(BlockOn::Join(target)) if *target == me) {
                t.state = Run::Runnable;
            }
        }
        // Pass the token to anyone runnable; if nobody is, the execution is
        // finishing and the remaining threads exit through their own paths.
        let others = inner.candidates(me);
        if let Some(&next) = others.first() {
            inner.grant(next);
        }
        self.cv.notify_all();
    }

    /// Parks until the token comes back to `me` (or the execution aborts).
    fn wait_for_token(&self, mut inner: StdMutexGuard<'_, ExecInner>, me: usize) {
        loop {
            if inner.abort {
                drop(inner);
                panic!("{ABORT_MSG}");
            }
            if inner.active == me && matches!(inner.threads[me].state, Run::Runnable) {
                return;
            }
            inner = self.cv.wait(inner).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Entry point for freshly spawned threads: parks until first granted.
    pub(crate) fn wait_first(&self, me: usize) {
        let inner = lock(self);
        self.wait_for_token(inner, me);
    }

    /// Model-level `join`: blocks until `target` finishes, then joins its
    /// final clock (the join happens-before edge).
    pub(crate) fn join_model(&self, me: usize, target: usize) {
        // Teardown mode: skip the model-level join while unwinding — the
        // real `std` join underneath still synchronizes the OS threads.
        if std::thread::panicking() {
            return;
        }
        loop {
            let final_clock = {
                let inner = lock(self);
                if inner.abort {
                    drop(inner);
                    panic!("{ABORT_MSG}");
                }
                if matches!(inner.threads[target].state, Run::Finished) {
                    inner.threads[target].final_clock.clone()
                } else {
                    None
                }
            };
            if let Some(fc) = final_clock {
                self.join_clock(me, &fc);
                return;
            }
            self.block(me, BlockOn::Join(target));
        }
    }

    /// An `n`-way value choice (load visibility, notify target).
    pub(crate) fn choose_value(&self, n: usize) -> usize {
        if n <= 1 {
            return 0;
        }
        lock(self).choose(n as u32) as usize
    }

    /// Flips the tear-down flag from outside the normal scheduling paths
    /// (the scope panic guard). The message is only a placeholder — the
    /// root panic payload carries the real diagnostic — so it is marked
    /// secondary, and pruned executions stay pruned.
    pub(crate) fn abort_execution(&self, why: &str) {
        let mut inner = lock(self);
        if inner.failure.is_none() && !inner.pruned {
            inner.failure = Some(format!("modelsim: {why}"));
            inner.secondary_failure = true;
        }
        inner.abort = true;
        self.cv.notify_all();
    }

    /// Post-execution summary for the driver: the recorded trace, the first
    /// failure (if any, with its secondary flag), and whether the step cap
    /// pruned the execution.
    pub(crate) fn take_outcome(&self) -> (Vec<Choice>, Option<(String, bool)>, bool) {
        let inner = lock(self);
        (
            inner.trace.clone(),
            inner.failure.clone().map(|m| (m, inner.secondary_failure)),
            inner.pruned,
        )
    }
}

// ---------------------------------------------------------------------------
// Memory model: atomic locations
// ---------------------------------------------------------------------------

/// One store in a location's modification order.
struct StoreRec {
    val: u64,
    /// Storer's full clock at the store — the happens-before footprint used
    /// for coherence floors.
    hb: VClock,
    /// Release clock joined by acquire loads that read this store (`None`
    /// for `Relaxed` stores outside any release sequence).
    rel: Option<VClock>,
}

struct LocationState {
    stores: Vec<StoreRec>,
    /// Index of the newest `SeqCst` store (SC loads cannot read past it).
    last_sc: usize,
    /// Per-thread coherence floors: a thread never reads older than this.
    floors: Vec<usize>,
}

/// An atomic location under the model: full store history plus per-thread
/// visibility floors. Also usable *outside* a model run, where it degrades
/// to a mutex-protected scalar (single-store history) so library unit tests
/// still run when the model backend is compiled in.
pub struct AtomicCell {
    init: u64,
    loc: std::sync::OnceLock<StdMutex<LocationState>>,
    /// Fast-path flag: locations that have never been touched inside a
    /// model execution skip clock bookkeeping entirely.
    fallback_only: StdAtomicBool,
}

/// Global counter handing out ids to model mutexes and condvars.
pub(crate) static NEXT_OBJ_ID: StdAtomicU64 = StdAtomicU64::new(1);

impl AtomicCell {
    /// Const-constructible so facade types can live in statics.
    pub const fn new(init: u64) -> Self {
        AtomicCell {
            init,
            loc: std::sync::OnceLock::new(),
            fallback_only: StdAtomicBool::new(false),
        }
    }

    fn state(&self) -> &StdMutex<LocationState> {
        self.loc.get_or_init(|| {
            StdMutex::new(LocationState {
                stores: vec![StoreRec { val: self.init, hb: VClock::new(), rel: None }],
                last_sc: 0,
                floors: Vec::new(),
            })
        })
    }

    fn with_state<R>(&self, f: impl FnOnce(&mut LocationState) -> R) -> R {
        let mut guard = self.state().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        f(&mut guard)
    }

    /// Plain read of the newest value (fallback mode, `&mut` accessors and
    /// post-join inspection).
    pub fn load_latest(&self) -> u64 {
        self.with_state(|loc| loc.stores.last().map(|s| s.val).unwrap_or(0))
    }

    /// Plain overwrite (fallback mode and `&mut` accessors). Keeps the
    /// history at one entry so long non-model runs do not accumulate.
    pub fn store_plain(&self, val: u64) {
        self.fallback_only.store(true, std::sync::atomic::Ordering::Relaxed);
        self.with_state(|loc| {
            loc.stores.clear();
            loc.stores.push(StoreRec { val, hb: VClock::new(), rel: None });
            loc.last_sc = 0;
            loc.floors.clear();
        });
    }

    /// Fallback-mode once-initialisation: runs `init` and flips the cell to
    /// 1 atomically under the location lock iff the cell is still 0. Used
    /// by the model `OnceLock` outside executions so real racing threads
    /// cannot observe the flag without the `init` side effect.
    pub(crate) fn once_try_init(&self, init: impl FnOnce()) -> bool {
        self.fallback_only.store(true, std::sync::atomic::Ordering::Relaxed);
        self.with_state(|loc| {
            let cur = loc.stores.last().map(|s| s.val).unwrap_or(0);
            if cur != 0 {
                return false;
            }
            init();
            loc.stores.clear();
            loc.stores.push(StoreRec { val: 1, hb: VClock::new(), rel: None });
            loc.last_sc = 0;
            loc.floors.clear();
            true
        })
    }

    /// Plain read-modify-write under the location lock (fallback mode).
    fn rmw_plain(&self, f: impl FnOnce(u64) -> u64) -> u64 {
        self.with_state(|loc| {
            let old = loc.stores.last().map(|s| s.val).unwrap_or(0);
            let new = f(old);
            loc.stores.clear();
            loc.stores.push(StoreRec { val: new, hb: VClock::new(), rel: None });
            loc.last_sc = 0;
            loc.floors.clear();
            old
        })
    }

    /// Model (or fallback) load.
    pub fn load(&self, ord: Ordering) -> u64 {
        let Some((exec, me)) = current() else {
            return self.rmw_plain(|v| v); // fallback: read latest, atomically
        };
        exec.schedule(me, false);
        let clock = exec.clock_of(me);
        let (val, rel, idx) = self
            .with_state(|loc| {
                loc.ensure_floor(me);
                // Coherence: the thread must read the newest store it is aware
                // of (happens-before) or anything newer.
                let mut floor = loc.floors[me];
                for (i, s) in loc.stores.iter().enumerate().skip(floor).rev() {
                    if s.hb.le(&clock) {
                        floor = floor.max(i);
                        break;
                    }
                }
                // SC approximation: an SC load reads the newest SC store or any
                // store ordered after it.
                if ord == Ordering::SeqCst {
                    floor = floor.max(loc.last_sc);
                }
                (floor, loc.stores.len())
            })
            .pipe(|(floor, len)| {
                let n = len - floor;
                let idx = floor + if n > 1 { exec.choose_value(n) } else { 0 };
                self.with_state(|loc| {
                    loc.floors[me] = loc.floors[me].max(idx);
                    (loc.stores[idx].val, loc.stores[idx].rel.clone(), idx)
                })
            });
        let _ = idx;
        if matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst) {
            if let Some(rel) = rel {
                exec.join_clock(me, &rel);
            }
        }
        val
    }

    /// Model (or fallback) store.
    pub fn store(&self, val: u64, ord: Ordering) {
        let Some((exec, me)) = current() else {
            self.store_plain(val);
            return;
        };
        exec.schedule(me, false);
        let clock = exec.tick_clock(me);
        let releases = matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst);
        self.with_state(|loc| {
            loc.ensure_floor(me);
            let rel = releases.then(|| clock.clone());
            let sc = ord == Ordering::SeqCst;
            loc.stores.push(StoreRec { val, hb: clock.clone(), rel });
            let idx = loc.stores.len() - 1;
            if sc {
                loc.last_sc = idx;
            }
            loc.floors[me] = idx;
        });
    }

    /// Model (or fallback) read-modify-write: `f(old) -> Option<new>`
    /// (`None` leaves the location unchanged — failed compare-exchange).
    /// Returns the old value.
    pub fn rmw(&self, ord: Ordering, fail: Ordering, f: impl FnOnce(u64) -> Option<u64>) -> u64 {
        let Some((exec, me)) = current() else {
            let mut out = 0;
            self.rmw_plain(|old| {
                out = old;
                f(old).unwrap_or(old)
            });
            return out;
        };
        exec.schedule(me, false);
        // Atomicity: RMWs always act on the newest store.
        let (old, old_rel) = self.with_state(|loc| {
            let s = loc.stores.last().expect("location has an initial store");
            (s.val, s.rel.clone())
        });
        let new = f(old);
        let acquires = matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst);
        let succeeded = new.is_some();
        let eff = if succeeded { ord } else { fail };
        if matches!(eff, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
            || (succeeded && acquires)
        {
            if let Some(rel) = &old_rel {
                exec.join_clock(me, rel);
            }
        }
        match new {
            None => {
                // Failed CAS: a load of the newest value.
                self.with_state(|loc| {
                    loc.ensure_floor(me);
                    let idx = loc.stores.len() - 1;
                    loc.floors[me] = loc.floors[me].max(idx);
                });
            }
            Some(new) => {
                let clock = exec.tick_clock(me);
                let releases =
                    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst);
                self.with_state(|loc| {
                    loc.ensure_floor(me);
                    // Release-sequence continuation: an RMW store passes on
                    // the release clock of the store it replaced.
                    let mut rel = releases.then(|| clock.clone());
                    if let Some(prev) = old_rel {
                        match &mut rel {
                            Some(r) => r.join(&prev),
                            None => rel = Some(prev),
                        }
                    }
                    let sc = ord == Ordering::SeqCst;
                    loc.stores.push(StoreRec { val: new, hb: clock.clone(), rel });
                    let idx = loc.stores.len() - 1;
                    if sc {
                        loc.last_sc = idx;
                    }
                    loc.floors[me] = idx;
                });
            }
        }
        old
    }
}

impl LocationState {
    fn ensure_floor(&mut self, tid: usize) {
        if self.floors.len() <= tid {
            self.floors.resize(tid + 1, 0);
        }
    }
}

/// Tiny pipe helper keeping the two-phase load readable without holding the
/// location lock across the choice call.
trait Pipe: Sized {
    fn pipe<R>(self, f: impl FnOnce(Self) -> R) -> R {
        f(self)
    }
}
impl<T> Pipe for T {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fallback_cell_behaves_like_an_atomic() {
        let c = AtomicCell::new(7);
        assert_eq!(c.load(Ordering::SeqCst), 7);
        c.store(9, Ordering::SeqCst);
        assert_eq!(c.load(Ordering::Relaxed), 9);
        let old = c.rmw(Ordering::SeqCst, Ordering::SeqCst, |v| Some(v + 1));
        assert_eq!(old, 9);
        assert_eq!(c.load(Ordering::SeqCst), 10);
        // Failed CAS leaves the value alone.
        let old = c.rmw(Ordering::SeqCst, Ordering::SeqCst, |_| None);
        assert_eq!(old, 10);
        assert_eq!(c.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn fallback_is_shared_across_real_threads() {
        let c = AtomicCell::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.rmw(Ordering::SeqCst, Ordering::SeqCst, |v| Some(v + 1));
                    }
                });
            }
        });
        assert_eq!(c.load(Ordering::SeqCst), 4000);
    }
}
