//! Model threads: a `std::thread::scope`-shaped API whose spawned threads
//! register with the active execution and run under the token scheduler.
//!
//! Model threads are real OS threads (no unsafe, no fibers); determinism
//! comes from the token in the `exec` scheduler, not from how the OS schedules
//! them. Spawn and join carry the usual happens-before edges. Outside an
//! execution everything delegates straight to `std`.
//!
//! One rule inherited from the token design: **join every handle before
//! the scope closure returns**. The ported kbiplex engines do; a dropped
//! handle would leave the implicit std-scope join invisible to the
//! scheduler.

use std::time::Duration;

use crate::exec::{self, ExecHandle};

pub use std::thread::available_parallelism;

/// Model-thread id of the calling thread (0 for the root closure and for
/// threads outside any execution). Stable within an execution — the model
/// replacement for thread-identity-derived striping.
#[must_use]
pub fn current_index() -> usize {
    exec::current_thread_index()
}

/// Voluntary descheduling point: in model mode another runnable thread (if
/// any) is switched to, so spin loops always let the spun-on thread run.
pub fn yield_now() {
    match exec::current() {
        Some((exec, me)) => exec.schedule(me, true),
        None => std::thread::yield_now(),
    }
}

/// Model time has no clock; sleeping is yielding.
pub fn sleep(dur: Duration) {
    match exec::current() {
        Some((exec, me)) => exec.schedule(me, true),
        None => std::thread::sleep(dur),
    }
}

/// Scope wrapper. Unlike `std::thread::Scope`, the reference handed to the
/// closure has its own (shorter) lifetime — required to wrap the invariant
/// std scope — which is why the facade exposes this type rather than
/// re-exporting std's in model mode.
pub struct Scope<'scope, 'env: 'scope> {
    std: &'scope std::thread::Scope<'scope, 'env>,
    ctx: Option<(ExecHandle, usize)>,
}

/// Handle to a model scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
    tid: usize,
    exec: Option<ExecHandle>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; under the model it registers with the
    /// execution and parks until first granted the token.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        match &self.ctx {
            None => ScopedJoinHandle { inner: self.std.spawn(f), tid: 0, exec: None },
            Some((exec, parent)) => {
                // Spawn edge: child starts from the parent's ticked clock.
                let parent_clock = exec.tick_clock(*parent);
                let tid = exec.register_thread(parent_clock);
                let exec_child = exec.clone();
                let inner = self.std.spawn(move || {
                    exec::set_current(Some((exec_child.clone(), tid)));
                    let guard = FinishGuard { exec: exec_child.clone(), tid, armed: true };
                    exec_child.wait_first(tid);
                    let out = f();
                    let mut guard = guard;
                    guard.armed = false;
                    exec_child.finish_thread(tid, false);
                    exec::set_current(None);
                    out
                });
                ScopedJoinHandle { inner, tid, exec: Some(exec.clone()) }
            }
        }
    }
}

/// Marks the thread finished even when `f` panics, so the execution
/// records the failure and tears down instead of hanging.
struct FinishGuard {
    exec: ExecHandle,
    tid: usize,
    armed: bool,
}

impl Drop for FinishGuard {
    fn drop(&mut self) {
        if self.armed {
            self.exec.finish_thread(self.tid, true);
        }
    }
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the thread to finish; under the model this blocks in
    /// model time and joins the target's final clock.
    pub fn join(self) -> std::thread::Result<T> {
        if let Some(exec) = &self.exec {
            let me = exec::current_thread_index();
            exec.schedule(me, false);
            exec.join_model(me, self.tid);
        }
        self.inner.join()
    }
}

/// Aborts the execution if the scope closure itself panics while children
/// may still hold or await the token.
struct ScopePanicGuard {
    ctx: Option<(ExecHandle, usize)>,
}

impl Drop for ScopePanicGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            if let Some((exec, _)) = &self.ctx {
                exec.abort_execution("scope closure panicked");
            }
        }
    }
}

/// Model replacement for `std::thread::scope`.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
{
    let ctx = exec::current();
    std::thread::scope(|s| {
        let guard = ScopePanicGuard { ctx: ctx.clone() };
        let out = f(&Scope { std: s, ctx });
        drop(guard);
        out
    })
}
