//! Vector clocks tracking the happens-before partial order between model
//! threads.
//!
//! Every model thread carries a [`VClock`]; every synchronising operation
//! (release store, mutex unlock, thread spawn/join, …) snapshots the acting
//! thread's clock, and the matching acquire side joins that snapshot into
//! its own clock. A store `s` *happens before* an event of thread `t`
//! exactly when the storing thread's snapshot at the store is `≤` the
//! clock of `t` at the event — the visibility model in
//! the `exec` scheduler is built entirely on this comparison.

/// A vector clock: one logical-time component per model thread.
///
/// Clocks are grown on demand (executions register threads dynamically), and
/// a missing component reads as zero, so clocks of different lengths compare
/// correctly.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock(Vec<u32>);

impl VClock {
    /// The zero clock (happens before everything).
    pub fn new() -> Self {
        VClock(Vec::new())
    }

    /// Component of thread `tid` (zero when never ticked).
    pub fn get(&self, tid: usize) -> u32 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    /// Advances the component of thread `tid` by one.
    pub fn tick(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }

    /// Pointwise maximum: afterwards `self` dominates both inputs.
    pub fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (mine, theirs) in self.0.iter_mut().zip(other.0.iter()) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// `true` when `self ≤ other` pointwise — i.e. every event `self`
    /// describes happens before (or is) the frontier `other` describes.
    pub fn le(&self, other: &VClock) -> bool {
        self.0.iter().enumerate().all(|(tid, &c)| c <= other.get(tid))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_and_compare() {
        let mut a = VClock::new();
        a.tick(0);
        a.tick(0);
        let mut b = VClock::new();
        b.tick(2);
        assert!(!a.le(&b));
        assert!(!b.le(&a));
        let mut j = a.clone();
        j.join(&b);
        assert!(a.le(&j));
        assert!(b.le(&j));
        assert_eq!(j.get(0), 2);
        assert_eq!(j.get(1), 0);
        assert_eq!(j.get(2), 1);
    }

    #[test]
    fn zero_clock_precedes_everything() {
        let zero = VClock::new();
        let mut t = VClock::new();
        t.tick(5);
        assert!(zero.le(&t));
        assert!(zero.le(&zero));
    }
}
