//! Model `OnceLock`: a publication flag run through the memory model plus a
//! real `std::sync::OnceLock` holding the value.
//!
//! `set` wins by compare-exchange on the flag (`AcqRel`) and only the
//! winner touches the cell — still inside the same token tenure, so no
//! other model thread can observe the flag before the value is written.
//! `get` is an `Acquire` load of the flag: under the model it may read a
//! stale 0 and return `None` even though a racing `set` already happened,
//! exactly like the real type; reading 1 joins the release clock, so the
//! value behind it is visible.

use crate::atomic::Ordering;
use crate::exec::{self, AtomicCell};

/// Model `OnceLock`; API subset used by the kbiplex lock-free core.
pub struct OnceLock<T> {
    /// 0 = empty, 1 = published. Runs through the vector-clock model.
    flag: AtomicCell,
    cell: std::sync::OnceLock<T>,
}

impl<T> OnceLock<T> {
    /// Creates an empty cell (const, usable in statics).
    #[must_use]
    pub const fn new() -> Self {
        OnceLock { flag: AtomicCell::new(0), cell: std::sync::OnceLock::new() }
    }

    /// Returns the value if this thread can see the publication. The flag
    /// store happened strictly before any thread can read 1 (token tenure
    /// in model mode, location lock in fallback), so a visible flag implies
    /// a populated cell.
    pub fn get(&self) -> Option<&T> {
        if self.flag.load(Ordering::Acquire) != 0 {
            self.cell.get()
        } else {
            None
        }
    }

    /// Publishes `value` if the cell is empty; returns it back otherwise.
    pub fn set(&self, value: T) -> Result<(), T> {
        match exec::current() {
            Some(_) => {
                let old = self.flag.cas_once(Ordering::AcqRel, Ordering::Acquire);
                if old == 0 {
                    // Sole winner; no schedule point between the flag CAS
                    // and this write, so publication is atomic in model
                    // time.
                    let _ = self.cell.set(value);
                    Ok(())
                } else {
                    Err(value)
                }
            }
            None => {
                let mut slot = Some(value);
                let won = self.flag.once_try_init(|| {
                    if let Some(v) = slot.take() {
                        let _ = self.cell.set(v);
                    }
                });
                if won {
                    Ok(())
                } else {
                    match slot.take() {
                        Some(v) => Err(v),
                        // `once_try_init` ran the closure but reported a
                        // loss — cannot happen.
                        None => self_consumed(),
                    }
                }
            }
        }
    }

    /// Exclusive read; no synchronisation needed through `&mut`.
    pub fn get_mut(&mut self) -> Option<&mut T> {
        if self.flag.load_latest() != 0 {
            self.cell.get_mut()
        } else {
            None
        }
    }

    /// Takes the value out, leaving the cell empty.
    pub fn take(&mut self) -> Option<T> {
        if self.flag.load_latest() != 0 {
            self.flag.store_plain(0);
            self.cell.take()
        } else {
            None
        }
    }
}

impl<T> Default for OnceLock<T> {
    fn default() -> Self {
        OnceLock::new()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for OnceLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OnceLock").field("value", &self.get()).finish()
    }
}

fn self_consumed() -> ! {
    unreachable!("modelsim OnceLock::once_try_init consumed the value but lost the race")
}

impl AtomicCell {
    /// 0→1 compare-exchange used by `OnceLock::set`; returns the old value.
    fn cas_once(&self, success: Ordering, failure: Ordering) -> u64 {
        self.rmw(success, failure, |old| (old == 0).then_some(1))
    }
}
