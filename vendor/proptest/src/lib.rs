//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! implements the subset of proptest used by this workspace's property
//! tests: the [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map`,
//! range and tuple strategies, [`prelude::Just`], [`prelude::any`],
//! [`collection::vec`], the [`proptest!`] macro, and the
//! `prop_assert!` / `prop_assert_eq!` assertion macros.
//!
//! Differences from real proptest: cases are generated from a fixed
//! deterministic seed (derived from the test name) and failing inputs are
//! **not shrunk** — the panic message reports the case number and the
//! assertion text instead.

#![forbid(unsafe_code)]

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Error produced by a failing `prop_assert!` inside a property body.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic RNG driving value generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed (typically derived from the test name).
    pub fn seed_from_u64(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// FNV-1a hash of a test name, used to derive a per-test seed.
pub fn seed_for_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use super::TestRng;
    use std::ops::Range;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Strategy that always yields a clone of its payload.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128) - (self.start as u128);
                    self.start + (rng.next_u64() as u128 % span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

    /// Strategy built by [`prop_oneof!`](crate::prop_oneof): draws
    /// uniformly among its arms.
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Wraps the given arms; panics if there are none.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let pick = rng.below(self.arms.len() as u64) as usize;
            self.arms[pick].generate(rng)
        }
    }

    /// Types with a canonical "generate anything" strategy ([`any`]).
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The strategy generating arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Strategies for collections.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Sizes accepted by [`vec()`]: an exact length or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { start: n, end: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange { start: r.start, end: r.end }
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy generating `Vec`s of `element` with a length drawn from
    /// `size` (an exact `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod option {
    //! Strategies for `Option`, mirroring `proptest::option`.

    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy returned by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Same default as real proptest: Some with probability 1/2.
            if rng.next_u64() & 1 == 1 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }

    /// A strategy generating `None` or `Some` of the inner strategy's value.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod sample {
    //! Sampling strategies, mirroring `proptest::sample`.

    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }

    /// A strategy drawing uniformly from a non-empty list of options.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }
}

pub mod prelude {
    //! Single-import convenience module, mirroring `proptest::prelude`.
    pub use crate::collection;
    pub use crate::strategy::{any, Any, Arbitrary, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        TestCaseError,
    };
}

/// Picks uniformly among several strategies producing the same value type.
/// Unlike real proptest there are no weighted arms — every arm is equally
/// likely.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($arm) as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}

/// Asserts a condition inside a property body, failing the case (not the
/// whole process) with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Asserts two expressions are equal inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts two expressions are unequal inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` randomly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    { ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block )* } => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::seed_from_u64(
                    $crate::seed_for_name(concat!(module_path!(), "::", stringify!($name))),
                );
                for case in 0..config.cases {
                    let result = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!("proptest: case {}/{} failed: {}", case + 1, config.cases, e);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 5usize..9), flag in any::<bool>()) {
            prop_assert!(a < 10);
            prop_assert!((5..9).contains(&b));
            let bit = u32::from(flag);
            prop_assert!(bit <= 1);
        }

        #[test]
        fn vec_lengths(v in collection::vec(any::<bool>(), 3usize), w in collection::vec(0u32..4, 0..6)) {
            prop_assert_eq!(v.len(), 3);
            prop_assert!(w.len() < 6);
            prop_assert!(w.iter().all(|&x| x < 4));
        }

        #[test]
        fn map_and_flat_map(x in (1u32..5).prop_flat_map(|n| (Just(n), 0u32..n)).prop_map(|(n, m)| (n, m))) {
            prop_assert!(x.1 < x.0);
        }

        #[test]
        fn oneof_and_select(a in prop_oneof![Just(1u32), Just(5u32), 10u32..20],
                            b in crate::sample::select(vec!["x", "y"]),
                            c in crate::option::of(0u32..3)) {
            prop_assert!(a == 1 || a == 5 || (10u32..20).contains(&a));
            prop_assert!(b == "x" || b == "y");
            prop_assert!(c.is_none() || c.unwrap() < 3);
        }
    }
}
