//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! implements exactly the API surface the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` extension methods
//! `gen`, `gen_range`, and `gen_bool`. The generator is a SplitMix64 —
//! deterministic, fast, and statistically more than good enough for graph
//! generation and randomized tests. It is **not** cryptographically secure.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of an RNG from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw output
/// (the `Standard` distribution in real `rand`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u128) - (start as u128) + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..9usize);
            assert!((3..9).contains(&x));
            let y = rng.gen_range(0..=5u32);
            assert!(y <= 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
