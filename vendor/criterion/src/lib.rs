//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! implements the subset of criterion's API that the `mbpe-bench` crate
//! uses: [`Criterion`], [`BenchmarkGroup`] (with `sample_size`,
//! `measurement_time`, `bench_function`, `bench_with_input`, `finish`),
//! [`Bencher::iter`], [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical sampling it runs each benchmark body
//! a small fixed number of times and prints the mean wall-clock time — the
//! bench binaries stay runnable and their timings comparable, without the
//! dependency. Pass `--bench` on the command line as usual; it is ignored.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark inside a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Builds an id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Names accepted by [`BenchmarkGroup::bench_function`].
pub trait IntoBenchmarkId {
    /// Converts into the printable id string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the body.
#[derive(Debug)]
pub struct Bencher {
    iterations: u32,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` `iterations` times and records the mean duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        self.elapsed = start.elapsed() / self.iterations;
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    iterations: u32,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark iteration count (criterion's sample count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Criterion samples `n` times; this shim scales its fixed iteration
        // count so cheap benches still iterate more than expensive ones.
        self.iterations = (n as u32).clamp(1, 100);
        self
    }

    /// Accepted for API compatibility; the shim ignores the target time.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim ignores the warm-up time.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_id());
        self.criterion.run_one(&label, self.iterations, &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_id());
        self.criterion.run_one(&label, self.iterations, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (prints nothing extra in the shim).
    pub fn finish(self) {}
}

/// Entry point handed to benchmark functions by [`criterion_group!`].
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), iterations: 10 }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_id();
        self.run_one(&label, 10, &mut f);
        self
    }

    fn run_one(&mut self, label: &str, iterations: u32, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher { iterations: iterations.max(1), elapsed: Duration::ZERO };
        f(&mut bencher);
        println!("{label:<60} {:>12.3?}/iter", bencher.elapsed);
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        #[doc = concat!("Runs the `", stringify!($name), "` benchmark group.")]
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the `main` function running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        {
            let mut group = c.benchmark_group("shim");
            group.sample_size(10).measurement_time(Duration::from_secs(1));
            group.bench_function("count", |b| b.iter(|| ran += 1));
            group.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            group.finish();
        }
        assert!(ran >= 10);
    }
}
