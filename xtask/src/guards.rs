//! Intra-procedural guard-liveness dataflow and the blocking-concurrency
//! lint rules built on it.
//!
//! The analysis walks one file's token stream (from [`crate::syntax`])
//! with a stack of lexical blocks. A *guard* is born when a statement
//! acquires a lock — through the serve crate's `lock()` helper, the core
//! crate's `plock()`, a direct `.lock()` method call, or a zero-argument
//! `.read()`/`.write()` (RwLock) — and dies at the end of its enclosing
//! block, at an explicit `drop(guard)`, or by shadowing/rebinding.
//! `Condvar::wait`-family calls consume and re-produce their guard, so the
//! guard stays live across them under its rebound name. Acquisitions that
//! are never bound (`*lock(&shared.current) = snap;`) are *temporaries*:
//! live to the end of their statement.
//!
//! Three rules consume the liveness state:
//!
//! - **`lock-order`** — each crate may declare a lock hierarchy
//!   ([`LOCK_HIERARCHIES`]); acquiring a declared lock while holding one
//!   of equal or later rank is a finding (re-acquisition of the *same*
//!   lock is a self-deadlock and reported as such). The hierarchy is the
//!   in-repo, build-enforced declaration the DESIGN document points at.
//! - **`guard-across-blocking`** — a live guard at a blocking call site
//!   (frame/socket I/O, channel ops, `JoinHandle::join`, condvar waits on
//!   *other* locks, `thread::sleep`) is a finding unless the exact
//!   (file, lock, callee) triple is declared in
//!   [`GUARD_BLOCKING_ALLOWLIST`] with its invariant — deliberate holds
//!   become auditable declarations instead of silence.
//! - **`condvar-wait-loop`** — every `Condvar::wait`/`wait_timeout` must
//!   sit under a `while`/`loop` ancestor inside its function, so spurious
//!   wakeups and stolen signals re-check the predicate. The `*_while`
//!   variants carry their own predicate closure and are exempt.
//!
//! # Known false-negative edges (by design)
//!
//! The dataflow is intra-procedural and lexical, so it cannot see:
//! guards moved into structs or returned to the caller; guards acquired
//! inside a callee (`shared.snapshot()` locks internally); blocking
//! reached through dynamic dispatch (`sink.on_solution` may park on a
//! bounded channel); temporaries created in a `for`-loop head, which
//! outlive the statement but are conservatively killed at `{`; and guards
//! whose lock expression the path heuristic cannot name (`stdout().lock()`
//! has no receiver path and is skipped). DESIGN.md §11 records these
//! edges and when to reach for the model checker or the sanitizers
//! instead.

use crate::syntax::{classify_block, BlockKind, SourceFile, TokKind, Token};
use crate::Finding;

/// A declared lock hierarchy: within `scope`, locks must be acquired in
/// strictly increasing `order` position.
pub struct LockHierarchy {
    /// Path prefix (workspace-relative) the hierarchy governs.
    pub scope: &'static str,
    /// Lock names (field/variable identifiers) in acquisition order:
    /// `["sched", "dynamic", "current"]` means `sched < dynamic < current`.
    pub order: &'static [&'static str],
}

/// The checked-in lock-order tables, one per crate that nests locks.
///
/// `crates/serve`: the scheduler lock is the hottest and outermost —
/// admission and worker pick run under `sched` alone; an update holds
/// `dynamic` while publishing into `current` (swap-under-update keeps
/// publications ordered), so `dynamic < current`; nothing may acquire
/// `sched` while holding either graph lock, or re-acquire a held lock.
pub const LOCK_HIERARCHIES: &[LockHierarchy] =
    &[LockHierarchy { scope: "crates/serve/src/", order: &["sched", "dynamic", "current"] }];

/// One deliberate guard-held-across-blocking site. The entry *is* the
/// audit trail: the invariant string states why the hold is correct.
pub struct BlockingAllow {
    /// Workspace-relative file the hold lives in.
    pub file: &'static str,
    /// Lock name (the last path segment of the lock expression).
    pub lock: &'static str,
    /// Blocking callee name as the rule reports it (`write_frame`,
    /// `join`, `Condvar::wait`, …).
    pub callee: &'static str,
    /// Why holding this guard across this call is correct.
    pub invariant: &'static str,
}

/// Deliberate holds, declared instead of silenced.
pub const GUARD_BLOCKING_ALLOWLIST: &[BlockingAllow] = &[BlockingAllow {
    file: "crates/serve/src/server.rs",
    lock: "out",
    callee: "write_frame",
    invariant: "per-connection write serialization IS this mutex's purpose: worker and \
                connection threads interleave whole frames on one TcpStream, so the length \
                prefix and payload must be written under one critical section; the peer \
                draining slowly only stalls its own connection's writers, never the \
                scheduler (no other lock is held here).",
}];

/// Blocking *method* names (`.name(` with a receiver).
const BLOCKING_METHODS: &[&str] =
    &["join", "send", "recv", "recv_timeout", "write_all", "read_exact", "flush", "accept"];

/// Blocking free functions (called bare or through a path).
const BLOCKING_FREE_FNS: &[&str] = &["write_frame", "read_frame"];

/// Blocking functions only recognised behind a `::`/`.` path segment
/// (`TcpStream::connect`, `thread::sleep`) — bare `connect`/`sleep` idents
/// are too generic to claim.
const BLOCKING_PATH_FNS: &[&str] = &["connect", "sleep"];

/// Free acquisition helpers: the serve crate's poison-riding `lock()` and
/// the core crate's `plock()`.
const ACQUIRE_FREE_FNS: &[&str] = &["lock", "plock"];

/// The `Condvar::wait` family. The `*_while` variants embed the predicate
/// re-check and are exempt from `condvar-wait-loop`.
const WAIT_METHODS: &[&str] = &["wait", "wait_timeout", "wait_while", "wait_timeout_while"];

/// A live guard.
#[derive(Debug, Clone)]
struct Guard {
    /// Binding name; `None` for statement-scoped temporaries.
    var: Option<String>,
    /// Full lock path as written (`shared.sched`, `deques[_]`).
    path: String,
    /// Last path segment — the name hierarchies and allowlists key on.
    key: String,
    /// Position in the governing hierarchy, when the key is declared.
    rank: Option<usize>,
    /// Acquisition line.
    line: usize,
}

/// One lexical block and the guards born in it.
struct Frame {
    kind: BlockKind,
    guards: Vec<Guard>,
}

/// Whether the concurrency rules apply to this path: crate library code
/// plus the umbrella crate's `src/` — not vendor shims, not the
/// workspace-root test/bench trees (their concurrency is the *subject* of
/// the stress suites, and `modelsim` implements condvars itself).
fn in_scope(rel: &str) -> bool {
    (rel.starts_with("crates/") && rel.contains("/src/")) || rel.starts_with("src/")
}

fn hierarchy_for(rel: &str) -> Option<&'static LockHierarchy> {
    LOCK_HIERARCHIES.iter().find(|h| rel.starts_with(h.scope))
}

fn allow_entry(rel: &str, key: &str, callee: &str) -> Option<&'static BlockingAllow> {
    GUARD_BLOCKING_ALLOWLIST.iter().find(|a| a.file == rel && a.lock == key && a.callee == callee)
}

/// Runs the guard-liveness analysis over one tokenized file. `test_lines`
/// marks lines inside `#[cfg(test)]` blocks (1-based line `n` at index
/// `n - 1`); findings on those lines are dropped.
pub fn analyze(rel: &str, sf: &SourceFile, test_lines: &[bool]) -> Vec<Finding> {
    if !in_scope(rel) {
        return Vec::new();
    }
    let hierarchy = hierarchy_for(rel);
    let toks = &sf.tokens;
    let mut findings: Vec<Finding> = Vec::new();
    let mut frames: Vec<Frame> = vec![Frame { kind: BlockKind::Other, guards: Vec::new() }];
    // Token indices since the last statement boundary (`;`, `{`, `}`).
    let mut recent: Vec<usize> = Vec::new();
    // Unbound acquisitions of the current statement.
    let mut temps: Vec<Guard> = Vec::new();
    // Blocking callees already seen in the current statement, so a
    // temporary acquired *later in the same expression* (its guard lives
    // to the end of the full expression) is still checked against them.
    let mut stmt_blocking: Vec<(usize, String)> = Vec::new();

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('{') {
            let recent_toks: Vec<Token> = recent.iter().map(|&j| toks[j].clone()).collect();
            frames.push(Frame { kind: classify_block(&recent_toks), guards: Vec::new() });
            recent.clear();
            temps.clear();
            stmt_blocking.clear();
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            if frames.len() > 1 {
                frames.pop();
            }
            recent.clear();
            temps.clear();
            stmt_blocking.clear();
            i += 1;
            continue;
        }
        if t.is_punct(';') {
            recent.clear();
            temps.clear();
            stmt_blocking.clear();
            i += 1;
            continue;
        }

        // drop(guard) / mem::drop(guard): explicit early release.
        if t.is_ident("drop")
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && !prev_is(toks, i, ".")
            && !prev_is(toks, i, "fn")
        {
            if let Some(name) = first_ident_after(toks, i + 2) {
                for frame in &mut frames {
                    frame.guards.retain(|g| g.var.as_deref() != Some(name));
                }
            }
        }

        // Acquisitions.
        if let Some((path, args_end)) = match_acquisition(toks, i) {
            let key = lock_key(&path);
            let rank = hierarchy.and_then(|h| h.order.iter().position(|&name| name == key));
            // lock-order: check against every live guard with a rank.
            if let Some(r) = rank {
                let live: Vec<&Guard> =
                    frames.iter().flat_map(|f| &f.guards).chain(&temps).collect();
                for g in live {
                    if g.key == key {
                        findings.push(Finding {
                            path: rel.to_string(),
                            line: t.line,
                            rule: "lock-order",
                            message: format!(
                                "re-acquisition of `{key}`: its guard from line {} is still \
                                 live — std mutexes are not reentrant, this self-deadlocks",
                                g.line
                            ),
                        });
                    } else if let Some(gr) = g.rank {
                        if gr >= r {
                            let h = hierarchy.expect("rank implies hierarchy");
                            findings.push(Finding {
                                path: rel.to_string(),
                                line: t.line,
                                rule: "lock-order",
                                message: format!(
                                    "lock-order violation: acquiring `{key}` while holding \
                                     `{}` (line {}) — declared hierarchy for {} is {}",
                                    g.key,
                                    g.line,
                                    h.scope,
                                    h.order.join(" < ")
                                ),
                            });
                        }
                    }
                }
            }
            // The acquisition only produces a *named* guard when the
            // statement binds the guard value itself: `let g = lock(&m);`
            // or `g = m.lock().unwrap();` — possibly through an
            // unwrap-style adapter. `let v = lock(&m).drain(..).collect()`
            // consumes the guard inside the expression, so it stays a
            // temporary and `v` is not a guard.
            let var =
                if directly_bound(toks, args_end) { binding_target(toks, &recent) } else { None };
            let guard = Guard { var, path: path.clone(), key: key.to_string(), rank, line: t.line };
            // A temporary acquired after a blocking callee in the same
            // statement is held across it (temporaries live to the end of
            // the full expression).
            if guard.var.is_none() {
                for (bline, callee) in &stmt_blocking {
                    if allow_entry(rel, &guard.key, callee).is_none() {
                        findings.push(blocking_finding(rel, *bline, &guard, callee));
                    }
                }
            }
            match guard.var {
                Some(ref name) => {
                    let name = name.clone();
                    for frame in &mut frames {
                        frame.guards.retain(|g| g.var.as_deref() != Some(name.as_str()));
                    }
                    if let Some(frame) = frames.last_mut() {
                        frame.guards.push(guard);
                    }
                }
                None => temps.push(guard),
            }
            recent.push(i);
            i = args_end.max(i + 1);
            continue;
        }

        // Condvar wait family.
        if t.is_punct('.')
            && toks.get(i + 1).is_some_and(|n| {
                n.kind == TokKind::Ident && WAIT_METHODS.contains(&n.text.as_str())
            })
            && toks.get(i + 2).is_some_and(|n| n.is_punct('('))
        {
            let method = toks[i + 1].text.clone();
            let line = toks[i + 1].line;
            // condvar-wait-loop: a plain wait must sit under a loop.
            let predicate_builtin = method.ends_with("_while");
            if !predicate_builtin {
                let mut looped = false;
                for frame in frames.iter().rev() {
                    if frame.kind.is_loop() {
                        looped = true;
                        break;
                    }
                    if frame.kind == BlockKind::Fn {
                        break;
                    }
                }
                if !looped {
                    findings.push(Finding {
                        path: rel.to_string(),
                        line,
                        rule: "condvar-wait-loop",
                        message: format!(
                            "`Condvar::{method}` outside a `while`/`loop`: a spurious wakeup \
                             or stolen signal skips the predicate re-check and the wait is \
                             lost — loop on the predicate around the wait"
                        ),
                    });
                }
            }
            // guard-across-blocking: every live guard except the one the
            // wait itself releases (its argument) is held across the park.
            let waited = first_ident_after(toks, i + 3).map(str::to_string);
            let callee = format!("Condvar::{method}");
            for g in frames.iter().flat_map(|f| &f.guards).chain(&temps) {
                if g.var.as_deref() == waited.as_deref() && g.var.is_some() {
                    continue;
                }
                if allow_entry(rel, &g.key, &callee).is_none() {
                    findings.push(blocking_finding(rel, line, g, &callee));
                }
            }
            // The wait consumes and re-produces the guard: under a `let`
            // or assignment it stays live under the (re)bound name, which
            // `binding_target` already registered when it was acquired —
            // nothing to update for the common `g = cv.wait(g)` shape.
            stmt_blocking.push((line, callee));
            recent.push(i);
            i += 2;
            continue;
        }

        // Blocking calls.
        if let Some(callee) = match_blocking(toks, i) {
            let line = t.line;
            for g in frames.iter().flat_map(|f| &f.guards).chain(&temps) {
                if allow_entry(rel, &g.key, &callee).is_none() {
                    findings.push(blocking_finding(rel, line, g, &callee));
                }
            }
            stmt_blocking.push((line, callee));
        }

        if recent.len() < 256 {
            recent.push(i);
        }
        i += 1;
    }

    findings.retain(|f| !test_lines.get(f.line.saturating_sub(1)).copied().unwrap_or(false));
    findings
}

fn blocking_finding(rel: &str, line: usize, g: &Guard, callee: &str) -> Finding {
    let var = g.var.as_deref().unwrap_or("<temporary>");
    Finding {
        path: rel.to_string(),
        line,
        rule: "guard-across-blocking",
        message: format!(
            "guard `{var}` on `{}` (acquired line {}) is held across blocking `{callee}` — \
             drop or scope the guard first, or declare the invariant in \
             GUARD_BLOCKING_ALLOWLIST (xtask/src/guards.rs)",
            g.path, g.line
        ),
    }
}

fn prev_is(toks: &[Token], i: usize, what: &str) -> bool {
    i > 0
        && toks.get(i - 1).is_some_and(|p| match what {
            "." => p.is_punct('.'),
            other => p.is_ident(other),
        })
}

/// First identifier at or after `start`, skipping `&`, `*` and `mut`.
fn first_ident_after(toks: &[Token], start: usize) -> Option<&str> {
    let mut j = start;
    while let Some(t) = toks.get(j) {
        if t.is_punct('&') || t.is_punct('*') || t.is_ident("mut") {
            j += 1;
            continue;
        }
        if t.kind == TokKind::Ident {
            return Some(&t.text);
        }
        return None;
    }
    None
}

/// Matches a lock acquisition at token `i`. Returns the lock path and the
/// index just past the tokens consumed by the *path* (the caller resumes
/// scanning there, so a path like `shared.sched` is not re-inspected).
fn match_acquisition(toks: &[Token], i: usize) -> Option<(String, usize)> {
    let t = &toks[i];
    // Free helpers: lock(&shared.sched), plock(&self.queue).
    if t.kind == TokKind::Ident
        && ACQUIRE_FREE_FNS.contains(&t.text.as_str())
        && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        && !prev_is(toks, i, ".")
        && !prev_is(toks, i, "fn")
    {
        let (path, end) = arg_path(toks, i + 2)?;
        return Some((path, end));
    }
    // Methods: receiver.lock(), receiver.read(), receiver.write() — the
    // RwLock forms only with zero arguments, so `io::Read::read(buf)` and
    // `io::Write::write(buf)` never match.
    if t.is_punct('.') {
        let name = toks.get(i + 1)?;
        let open = toks.get(i + 2)?;
        if name.kind != TokKind::Ident || !open.is_punct('(') {
            return None;
        }
        let zero_arg = toks.get(i + 3).is_some_and(|n| n.is_punct(')'));
        let is_lock = name.text == "lock";
        let is_rw = (name.text == "read" || name.text == "write") && zero_arg;
        if !is_lock && !is_rw {
            return None;
        }
        let path = receiver_path(toks, i)?;
        return Some((path, i + 3));
    }
    None
}

/// Extracts the lock path from a call argument list starting at `start`
/// (just after the `(`): skips `&`/`mut`, then takes a dotted/`::` path
/// with `[index]` segments collapsed to `[_]`.
fn arg_path(toks: &[Token], start: usize) -> Option<(String, usize)> {
    let mut j = start;
    while toks.get(j).is_some_and(|t| t.is_punct('&') || t.is_ident("mut")) {
        j += 1;
    }
    let first = toks.get(j)?;
    if first.kind != TokKind::Ident {
        return None;
    }
    let mut path = first.text.clone();
    j += 1;
    loop {
        match toks.get(j) {
            Some(t) if t.is_punct('.') || t.is_punct(':') => {
                // `.segment` or `::segment` (the `::` arrives as two `:`).
                let mut k = j + 1;
                if t.is_punct(':') {
                    if !toks.get(k).is_some_and(|n| n.is_punct(':')) {
                        break;
                    }
                    k += 1;
                }
                match toks.get(k) {
                    Some(seg) if seg.kind == TokKind::Ident || seg.kind == TokKind::Num => {
                        path.push('.');
                        path.push_str(&seg.text);
                        j = k + 1;
                    }
                    _ => break,
                }
            }
            Some(t) if t.is_punct('[') => {
                // Collapse the index expression: different indices are
                // different locks, so indexed paths never join a declared
                // hierarchy — but the guard itself is still tracked.
                let mut depth = 1usize;
                let mut k = j + 1;
                while let Some(inner) = toks.get(k) {
                    if inner.is_punct('[') {
                        depth += 1;
                    } else if inner.is_punct(']') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
                path.push_str("[_]");
                j = k + 1;
            }
            _ => break,
        }
    }
    Some((path, j))
}

/// Walks backwards from the `.` of a method call to recover the receiver
/// path (`self.queue`, `shared.work`). Returns `None` when the receiver is
/// not a plain path (e.g. `stdout().lock()`), which the caller skips.
fn receiver_path(toks: &[Token], dot: usize) -> Option<String> {
    let mut parts: Vec<String> = Vec::new();
    let mut j = dot;
    loop {
        if j == 0 {
            break;
        }
        let prev = &toks[j - 1];
        if prev.kind == TokKind::Ident || prev.kind == TokKind::Num {
            parts.push(prev.text.clone());
            j -= 1;
            // Continue only through a `.` connector.
            if j > 0 && toks[j - 1].is_punct('.') {
                j -= 1;
                continue;
            }
            break;
        }
        // Receiver ends in `)`/`]`/literal — not a nameable path.
        return None;
    }
    if parts.is_empty() {
        return None;
    }
    parts.reverse();
    Some(parts.join("."))
}

/// The hierarchy/allowlist key of a lock path: its last plain segment
/// (`shared.sched` → `sched`; indexed paths keep the `[_]` marker so they
/// can never collide with a declared name).
fn lock_key(path: &str) -> &str {
    path.rsplit('.').next().unwrap_or(path)
}

/// Matches a blocking callee at token `i`; returns its reported name.
fn match_blocking(toks: &[Token], i: usize) -> Option<String> {
    let t = &toks[i];
    if t.is_punct('.') {
        let name = toks.get(i + 1)?;
        if name.kind == TokKind::Ident
            && BLOCKING_METHODS.contains(&name.text.as_str())
            && toks.get(i + 2).is_some_and(|n| n.is_punct('('))
        {
            return Some(name.text.clone());
        }
        return None;
    }
    if t.kind != TokKind::Ident || !toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
        return None;
    }
    if prev_is(toks, i, "fn") {
        return None;
    }
    if BLOCKING_FREE_FNS.contains(&t.text.as_str()) && !prev_is(toks, i, ".") {
        return Some(t.text.clone());
    }
    if BLOCKING_PATH_FNS.contains(&t.text.as_str()) && i > 0 && toks[i - 1].is_punct(':') {
        return Some(t.text.clone());
    }
    None
}

/// True when the expression ending at the acquisition's `)` (index
/// `close`) is the whole right-hand side of its statement — optionally
/// through unwrap-style adapters that return the guard unchanged — so the
/// statement's binding really names the guard.
fn directly_bound(toks: &[Token], close: usize) -> bool {
    let mut j = close;
    if !toks.get(j).is_some_and(|t| t.is_punct(')')) {
        return false;
    }
    j += 1;
    loop {
        match toks.get(j) {
            Some(t) if t.is_punct(';') => return true,
            Some(t) if t.is_punct('.') => {
                let name = match toks.get(j + 1) {
                    Some(n) if n.kind == TokKind::Ident => n.text.as_str(),
                    _ => return false,
                };
                if !matches!(name, "unwrap" | "expect" | "unwrap_or_else") {
                    return false;
                }
                if !toks.get(j + 2).is_some_and(|t| t.is_punct('(')) {
                    return false;
                }
                // Skip the adapter's balanced argument list.
                let mut depth = 1usize;
                j += 3;
                while let Some(t) = toks.get(j) {
                    if t.is_punct('(') {
                        depth += 1;
                    } else if t.is_punct(')') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                j += 1;
            }
            _ => return false,
        }
    }
}

/// Resolves the binding target of the statement whose tokens (indices into
/// the file's stream) are in `recent`: `let [mut] name = …`, tuple `let
/// (name, _) = …`, or a plain `name = …` rebind. `None` for temporaries.
fn binding_target(toks: &[Token], recent: &[usize]) -> Option<String> {
    let recent_toks: Vec<&Token> = recent.iter().map(|&j| &toks[j]).collect();
    if let [.., prev, eq] = recent_toks.as_slice() {
        if eq.is_punct('=') && prev.kind == TokKind::Ident && !prev.is_ident("mut") {
            // Exclude `==`, `<=`, `+=` … by checking the token before the
            // pair is not an operator fragment and the `=` is a lone sign.
            let before = recent_toks.len().checked_sub(3).map(|k| recent_toks[k]);
            let compound = before
                .is_some_and(|b| b.kind == TokKind::Punct && "=<>!+-*/%&|^".contains(&b.text));
            if !compound {
                return Some(prev.text.clone());
            }
        }
    }
    // `let` pattern: first identifier after `let`, skipping `mut`/`(`.
    let let_pos = recent_toks.iter().position(|t| t.is_ident("let"))?;
    let mut j = let_pos + 1;
    while recent_toks
        .get(j)
        .is_some_and(|t| t.is_ident("mut") || t.is_punct('(') || t.is_punct('&'))
    {
        j += 1;
    }
    let target = recent_toks.get(j)?;
    if target.kind == TokKind::Ident {
        Some(target.text.clone())
    } else {
        None
    }
}
