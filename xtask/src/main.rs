//! `cargo xtask` — repo automation entry point.

#![forbid(unsafe_code)]

fn main() {
    std::process::exit(xtask::run(std::env::args().skip(1)));
}
