//! The `--report` JSON artifact emitted by `cargo xtask lint`.
//!
//! CI uploads this file verbatim, so the schema is pinned here and in
//! `xtask/README.md`, and a fixture test parses a seeded-findings report
//! with the workspace's own independent JSON parser (`kbiplex::json`) to
//! keep the writer honest. Version bumps are additive: consumers must
//! ignore unknown keys.
//!
//! # Schema (version 1)
//!
//! ```json
//! {
//!   "version": 1,
//!   "tool": "xtask-lint",
//!   "files_scanned": 142,
//!   "elapsed_ms": 38,
//!   "clean": false,
//!   "finding_count": 1,
//!   "findings": [
//!     {
//!       "path": "crates/serve/src/server.rs",
//!       "line": 210,
//!       "rule": "lock-order",
//!       "message": "lock-order violation: …"
//!     }
//!   ]
//! }
//! ```
//!
//! - `version` — schema version, bumped only on breaking shape changes.
//! - `tool` — constant `"xtask-lint"` discriminator for artifact tooling.
//! - `files_scanned` — `.rs` files the pass parsed.
//! - `elapsed_ms` — wall-clock cost of the whole pass (parse + all rules),
//!   so lint cost stays visible in the CI artifact trail.
//! - `clean` — `finding_count == 0`; the exit code mirrors it.
//! - `findings[]` — one object per finding, in path/line order as
//!   reported. `line` is 1-based; `0` means a whole-file finding. `rule`
//!   is the stable rule identifier (`lock-order`, `no-unwrap`, …).

use crate::LintRun;

/// Renders the version-1 report document for a finished lint run.
#[must_use]
pub fn render(run: &LintRun) -> String {
    let mut out = String::with_capacity(256 + run.findings.len() * 128);
    out.push_str("{\n");
    out.push_str("  \"version\": 1,\n");
    out.push_str("  \"tool\": \"xtask-lint\",\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", run.files_scanned));
    out.push_str(&format!("  \"elapsed_ms\": {},\n", run.elapsed_ms));
    out.push_str(&format!("  \"clean\": {},\n", run.findings.is_empty()));
    out.push_str(&format!("  \"finding_count\": {},\n", run.findings.len()));
    out.push_str("  \"findings\": [");
    for (i, f) in run.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"path\": \"{}\", ", escape(&f.path)));
        out.push_str(&format!("\"line\": {}, ", f.line));
        out.push_str(&format!("\"rule\": \"{}\", ", escape(f.rule)));
        out.push_str(&format!("\"message\": \"{}\"}}", escape(&f.message)));
    }
    if !run.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// JSON string escaping: quotes, backslashes and control characters.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
