//! Hand-rolled Rust tokenizer and block classifier for the lint pass.
//!
//! The container is offline and `xtask` stays dependency-free, so this is
//! a purpose-built lexer rather than `syn`: one pass over the source that
//! produces (a) a token stream — identifiers, lifetimes, literals,
//! single-character punctuation — with 1-based line numbers, and (b) a
//! *masked* copy of every line in which comments and literal interiors are
//! blanked to spaces (string/char delimiters survive). The masked lines
//! feed the legacy line-oriented rules (substring checks, brace counting)
//! without literals or comments producing false hits; the token stream
//! feeds the scope-aware rules in [`crate::guards`].
//!
//! The lexer understands everything the workspace actually writes: line
//! and *nested* block comments, string/byte-string literals with escapes,
//! raw strings (`r"…"`, `r#"…"#`, `br#"…"#`), char and byte-char
//! literals, lifetimes vs. chars (`'a` vs `'a'`), raw identifiers
//! (`r#match`), numeric literals including float dots (without eating
//! `..` ranges), and plain identifiers/punctuation. It does not build an
//! AST; block *kinds* are recovered heuristically by [`classify_block`]
//! from the tokens between the previous statement boundary and an opening
//! brace, which is exact for the forms the concurrency rules care about
//! (`fn`, `while`, `loop`, `for`, `if`, `else`, `match`) and degrades to
//! [`BlockKind::Other`] for struct literals, closures and expression
//! blocks.

use std::fmt;

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`sched`, `while`, `r#match` → `match`).
    Ident,
    /// Lifetime (`'a`, `'static`), without treating it as a char literal.
    Lifetime,
    /// String, byte-string or raw-string literal; `text` keeps the full
    /// literal including delimiters so rules can read its value.
    Str,
    /// Char or byte-char literal.
    Char,
    /// Numeric literal (integer or float, any radix).
    Num,
    /// One punctuation character (`{`, `.`, `!`, …).
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Source text. For [`TokKind::Str`] this is the complete literal;
    /// for raw identifiers the `r#` prefix is stripped.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
}

impl Token {
    /// True when the token is this exact punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// True when the token is this exact identifier/keyword.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// The value of a plain (non-raw) string literal: the text between the
    /// delimiters, escapes left as written. `None` for other tokens.
    pub fn str_value(&self) -> Option<&str> {
        if self.kind != TokKind::Str {
            return None;
        }
        let inner = self.text.strip_prefix('b').unwrap_or(&self.text);
        let inner = inner.trim_start_matches('r').trim_matches('#');
        inner.strip_prefix('"').and_then(|s| s.strip_suffix('"'))
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// A tokenized source file: the token stream plus raw and masked lines.
/// Produced once per file and shared by every rule family.
#[derive(Debug)]
pub struct SourceFile {
    /// The token stream in source order.
    pub tokens: Vec<Token>,
    /// The original lines, 0-indexed (line `n` of the file is `raw[n-1]`).
    pub raw_lines: Vec<String>,
    /// The masked lines: comments and literal interiors blanked to spaces,
    /// literal delimiters kept, code preserved byte-for-byte otherwise.
    pub code_lines: Vec<String>,
}

/// Accumulates the masked copy of the source, line by line.
struct Masker {
    lines: Vec<String>,
    cur: String,
}

impl Masker {
    /// Emits a character verbatim (code outside comments/literals).
    fn keep(&mut self, c: char) {
        if c == '\n' {
            self.lines.push(std::mem::take(&mut self.cur));
        } else {
            self.cur.push(c);
        }
    }

    /// Emits a space in place of a masked character, preserving columns.
    fn mask(&mut self, c: char) {
        if c == '\n' {
            self.lines.push(std::mem::take(&mut self.cur));
        } else {
            self.cur.push(' ');
        }
    }
}

impl SourceFile {
    /// Lexes `source` into tokens and masked lines. Never fails: malformed
    /// input (unterminated literals, stray bytes) degrades to masking the
    /// rest of the file rather than panicking, which is the right failure
    /// mode for a linter.
    pub fn parse(source: &str) -> SourceFile {
        let chars: Vec<char> = source.chars().collect();
        let n = chars.len();
        let mut tokens = Vec::new();
        let mut m = Masker { lines: Vec::new(), cur: String::new() };
        let mut line = 1usize;
        let mut i = 0usize;

        while i < n {
            let c = chars[i];
            if c == '\n' {
                m.keep(c);
                line += 1;
                i += 1;
                continue;
            }
            if c.is_whitespace() {
                m.keep(c);
                i += 1;
                continue;
            }
            // Line comment (also covers doc comments).
            if c == '/' && chars.get(i + 1) == Some(&'/') {
                while i < n && chars[i] != '\n' {
                    m.mask(chars[i]);
                    i += 1;
                }
                continue;
            }
            // Block comment, nesting like rustc.
            if c == '/' && chars.get(i + 1) == Some(&'*') {
                let mut depth = 1usize;
                m.mask('/');
                m.mask('*');
                i += 2;
                while i < n && depth > 0 {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        m.mask('/');
                        m.mask('*');
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        m.mask('*');
                        m.mask('/');
                        i += 2;
                    } else {
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        m.mask(chars[i]);
                        i += 1;
                    }
                }
                continue;
            }
            // Raw strings: r"…", r#"…"#, br#"…"# — and raw identifiers
            // (r#ident), which fall through to the ident path.
            if c == 'r' || (c == 'b' && chars.get(i + 1) == Some(&'r')) {
                let prefix = if c == 'b' { 2 } else { 1 };
                let mut j = i + prefix;
                let mut hashes = 0usize;
                while chars.get(j) == Some(&'#') {
                    hashes += 1;
                    j += 1;
                }
                if chars.get(j) == Some(&'"') {
                    let start_line = line;
                    let mut text = String::new();
                    // Emit prefix + hashes masked, delimiters kept.
                    for &pc in &chars[i..j] {
                        m.mask(pc);
                        text.push(pc);
                    }
                    m.keep('"');
                    text.push('"');
                    i = j + 1;
                    loop {
                        if i >= n {
                            break;
                        }
                        if chars[i] == '"'
                            && chars[i + 1..].iter().take(hashes).filter(|&&h| h == '#').count()
                                == hashes
                        {
                            m.keep('"');
                            text.push('"');
                            i += 1;
                            for _ in 0..hashes {
                                m.mask('#');
                                text.push('#');
                                i += 1;
                            }
                            break;
                        }
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        text.push(chars[i]);
                        m.mask(chars[i]);
                        i += 1;
                    }
                    tokens.push(Token { kind: TokKind::Str, text, line: start_line });
                    continue;
                }
                if c == 'r' && hashes > 0 && chars.get(j).is_some_and(|&x| is_ident_start(x)) {
                    // Raw identifier r#ident: mask the prefix, lex the rest
                    // as a plain identifier so `r#match` compares as "match".
                    m.mask('r');
                    m.mask('#');
                    i += 2;
                    let (text, len) = lex_ident(&chars[i..]);
                    for &pc in &chars[i..i + len] {
                        m.keep(pc);
                    }
                    tokens.push(Token { kind: TokKind::Ident, text, line });
                    i += len;
                    continue;
                }
                // else: plain identifier starting with r/b — fall through.
            }
            // Strings and byte strings with escapes.
            if c == '"' || (c == 'b' && chars.get(i + 1) == Some(&'"')) {
                let start_line = line;
                let mut text = String::new();
                if c == 'b' {
                    m.mask('b');
                    text.push('b');
                    i += 1;
                }
                m.keep('"');
                text.push('"');
                i += 1;
                while i < n {
                    match chars[i] {
                        '\\' => {
                            text.push('\\');
                            m.mask('\\');
                            i += 1;
                            if i < n {
                                if chars[i] == '\n' {
                                    line += 1;
                                }
                                text.push(chars[i]);
                                m.mask(chars[i]);
                                i += 1;
                            }
                        }
                        '"' => {
                            m.keep('"');
                            text.push('"');
                            i += 1;
                            break;
                        }
                        ch => {
                            if ch == '\n' {
                                line += 1;
                            }
                            text.push(ch);
                            m.mask(ch);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token { kind: TokKind::Str, text, line: start_line });
                continue;
            }
            // Chars, byte chars and lifetimes.
            if c == '\'' || (c == 'b' && chars.get(i + 1) == Some(&'\'')) {
                let byte = c == 'b';
                let q = if byte { i + 1 } else { i };
                // A lifetime is `'` + ident with no closing quote right
                // after the first character (`'a` vs `'a'`).
                let is_lifetime = !byte
                    && chars.get(q + 1).is_some_and(|&x| is_ident_start(x))
                    && chars.get(q + 2) != Some(&'\'');
                if is_lifetime {
                    m.keep('\'');
                    i += 1;
                    let (ident, len) = lex_ident(&chars[i..]);
                    for &pc in &chars[i..i + len] {
                        m.keep(pc);
                    }
                    i += len;
                    tokens.push(Token { kind: TokKind::Lifetime, text: format!("'{ident}"), line });
                } else {
                    if byte {
                        m.mask('b');
                        i += 1;
                    }
                    m.keep('\'');
                    i += 1;
                    while i < n {
                        match chars[i] {
                            '\\' => {
                                m.mask('\\');
                                i += 1;
                                if i < n {
                                    m.mask(chars[i]);
                                    i += 1;
                                }
                            }
                            '\'' => {
                                m.keep('\'');
                                i += 1;
                                break;
                            }
                            ch => {
                                if ch == '\n' {
                                    line += 1;
                                }
                                m.mask(ch);
                                i += 1;
                            }
                        }
                    }
                    tokens.push(Token { kind: TokKind::Char, text: "''".to_string(), line });
                }
                continue;
            }
            // Identifiers and keywords.
            if is_ident_start(c) {
                let (text, len) = lex_ident(&chars[i..]);
                for &pc in &chars[i..i + len] {
                    m.keep(pc);
                }
                tokens.push(Token { kind: TokKind::Ident, text, line });
                i += len;
                continue;
            }
            // Numbers: alnum + underscores, plus a decimal point only when
            // followed by a digit (so `0..n` keeps its range dots).
            if c.is_ascii_digit() {
                let mut text = String::new();
                while i < n {
                    let ch = chars[i];
                    let float_dot = ch == '.'
                        && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())
                        && !text.contains('.');
                    if !(ch.is_ascii_alphanumeric() || ch == '_' || float_dot) {
                        break;
                    }
                    text.push(ch);
                    m.keep(ch);
                    i += 1;
                }
                tokens.push(Token { kind: TokKind::Num, text, line });
                continue;
            }
            // Everything else is one punctuation character.
            m.keep(c);
            tokens.push(Token { kind: TokKind::Punct, text: c.to_string(), line });
            i += 1;
        }
        if !m.cur.is_empty() {
            m.lines.push(std::mem::take(&mut m.cur));
        }
        let raw_lines: Vec<String> = source.lines().map(str::to_string).collect();
        // The masker splits on '\n' exactly like `str::lines`; a file
        // without a trailing newline leaves the last line pending, flushed
        // above. Pad defensively so indexing by line number stays in
        // bounds even on malformed input.
        let mut code_lines = m.lines;
        while code_lines.len() < raw_lines.len() {
            code_lines.push(String::new());
        }
        SourceFile { tokens, raw_lines, code_lines }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

/// Lexes one identifier from the head of `chars`; returns (text, length).
fn lex_ident(chars: &[char]) -> (String, usize) {
    let mut len = 0usize;
    while chars.get(len).is_some_and(|&c| c.is_alphanumeric() || c == '_') {
        len += 1;
    }
    (chars[..len].iter().collect(), len)
}

/// The kind of a brace-delimited block, recovered from the tokens between
/// the previous statement boundary (`;`, `{`, `}`) and the opening `{`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// A function (or method) body: the intra-procedural analysis boundary.
    Fn,
    /// `while`/`while let` body — a predicate re-check loop.
    While,
    /// `loop` body — also counts as a predicate re-check loop (the
    /// predicate is re-tested inside before the next wait).
    Loop,
    /// `for` body. (Also matches `impl Trait for Type`, which is harmless:
    /// no analyzable statement sits directly in an impl block.)
    For,
    /// `if`/`if let` body — notably *not* a re-check loop.
    If,
    /// `else` body.
    Else,
    /// `match` body.
    Match,
    /// Anything else: expression blocks, closures, struct literals, mods.
    Other,
}

impl BlockKind {
    /// True for block kinds that re-run their body: a condvar wait inside
    /// one of these re-checks its predicate after waking.
    pub fn is_loop(self) -> bool {
        matches!(self, BlockKind::While | BlockKind::Loop | BlockKind::For)
    }
}

/// Classifies the block opened by a `{` from the tokens since the previous
/// statement boundary: the first control keyword wins (`while let` is a
/// `while`; `else if` is an `else`), `fn` anywhere marks a function body.
pub fn classify_block(recent: &[Token]) -> BlockKind {
    for tok in recent {
        if tok.kind != TokKind::Ident {
            continue;
        }
        match tok.text.as_str() {
            "fn" => return BlockKind::Fn,
            "while" => return BlockKind::While,
            "loop" => return BlockKind::Loop,
            "for" => return BlockKind::For,
            "if" => return BlockKind::If,
            "else" => return BlockKind::Else,
            "match" => return BlockKind::Match,
            _ => {}
        }
    }
    BlockKind::Other
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_comments_and_literal_interiors() {
        let sf = SourceFile::parse("let a = \"x{y\"; // brace {\nlet b = 1;\n");
        assert_eq!(sf.code_lines[0], "let a = \"   \";           ");
        assert_eq!(sf.code_lines[1], "let b = 1;");
        // No brace leaks out of the string or the comment.
        assert!(!sf.code_lines[0].contains('{'));
    }

    #[test]
    fn raw_strings_do_not_leak_code() {
        let src = "let s = r#\"a \" b { \"#; s.len()\n";
        let sf = SourceFile::parse(src);
        assert!(!sf.code_lines[0].contains('{'), "{:?}", sf.code_lines[0]);
        assert!(sf.code_lines[0].contains("s.len()"));
        let strs: Vec<_> = sf.tokens.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let sf = SourceFile::parse("fn f<'a>(x: &'a str) -> char { 'x' }\n");
        let lifetimes: Vec<_> =
            sf.tokens.iter().filter(|t| t.kind == TokKind::Lifetime).map(|t| &t.text).collect();
        assert_eq!(lifetimes, ["'a", "'a"]);
        assert_eq!(sf.tokens.iter().filter(|t| t.kind == TokKind::Char).count(), 1);
    }

    #[test]
    fn nested_block_comments_terminate() {
        let sf = SourceFile::parse("/* outer /* inner */ still */ fn f() {}\n");
        assert!(sf.code_lines[0].contains("fn f()"));
        assert!(!sf.code_lines[0].contains("outer"));
    }

    #[test]
    fn numbers_keep_range_dots() {
        let sf = SourceFile::parse("let r = 0..n; let f = 1.5;\n");
        let nums: Vec<_> =
            sf.tokens.iter().filter(|t| t.kind == TokKind::Num).map(|t| t.text.as_str()).collect();
        assert_eq!(nums, ["0", "1.5"]);
    }

    #[test]
    fn str_value_reads_plain_literals() {
        let sf = SourceFile::parse("order!(SeqCst, \"seen-exit-stripe\")\n");
        let tag = sf.tokens.iter().find_map(Token::str_value);
        assert_eq!(tag, Some("seen-exit-stripe"));
    }

    #[test]
    fn classify_recognises_control_blocks() {
        let kinds: Vec<BlockKind> = [
            "fn f(a: u32, b: u32) -> u32",
            "while let Some(x) = it.next()",
            "'outer: loop",
            "for x in xs",
            "if let Some(j) = q.pick()",
            "else",
            "match op",
            "let j =",
        ]
        .iter()
        .map(|src| classify_block(&SourceFile::parse(src).tokens))
        .collect();
        use BlockKind::*;
        assert_eq!(kinds, vec![Fn, While, Loop, For, If, Else, Match, Other]);
    }
}
