//! The `ordering-registry-drift` rule: DESIGN.md §5's named-site table
//! and the `order!(…, "site")` sites in `crates/core/src/parallel/` must
//! describe the same set of tags, in both directions.
//!
//! The `order!` macro names a memory-ordering *site* so the model checker
//! can downgrade it at runtime; DESIGN.md § "Memory-ordering arguments"
//! carries the human argument for each named site as a `**`tag`**` bullet.
//! Documentation rot is silent by nature — a renamed site, a new site
//! without an argument, or a deleted site with a stale bullet all read
//! fine locally — so the lint cross-checks the two registries on every
//! run: a source tag with no DESIGN entry means an undocumented ordering,
//! and a DESIGN tag with no source site means the argument no longer
//! points at code.

use crate::syntax::{SourceFile, TokKind};
use crate::Finding;

/// Where the named sites live.
pub const SITE_SCOPE: &str = "crates/core/src/parallel/";

/// The DESIGN.md section heading that owns the named-site table.
pub const DESIGN_SECTION: &str = "Memory-ordering arguments";

/// One `order!(…, "tag")` occurrence.
#[derive(Debug, Clone)]
pub struct OrderSite {
    /// Workspace-relative file.
    pub path: String,
    /// 1-based line of the `order!` invocation.
    pub line: usize,
    /// The site tag (the string literal's value).
    pub tag: String,
}

/// Collects the `order!(…, "tag")` sites from one tokenized file. Callers
/// gate on [`SITE_SCOPE`]; this only pattern-matches the stream:
/// `order` `!` `(` IDENT `,` STRING `)`.
pub fn collect_order_sites(rel: &str, sf: &SourceFile) -> Vec<OrderSite> {
    let toks = &sf.tokens;
    let mut sites = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("order") || !toks.get(i + 1).is_some_and(|t| t.is_punct('!')) {
            continue;
        }
        let ok = toks.get(i + 2).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 3).is_some_and(|t| t.kind == TokKind::Ident)
            && toks.get(i + 4).is_some_and(|t| t.is_punct(','))
            && toks.get(i + 6).is_some_and(|t| t.is_punct(')'));
        if !ok {
            continue;
        }
        if let Some(tag) = toks.get(i + 5).and_then(|t| t.str_value()) {
            sites.push(OrderSite {
                path: rel.to_string(),
                line: toks[i].line,
                tag: tag.to_string(),
            });
        }
    }
    sites
}

/// The `**`tag`**` entries of the DESIGN.md named-site section, with their
/// 1-based line numbers.
pub fn design_ordering_tags(design: &str) -> Vec<(usize, String)> {
    let mut tags = Vec::new();
    let mut in_section = false;
    for (idx, line) in design.lines().enumerate() {
        if line.starts_with("## ") {
            in_section = line.contains(DESIGN_SECTION);
            continue;
        }
        if !in_section {
            continue;
        }
        let mut rest = line;
        while let Some(start) = rest.find("**`") {
            let tail = &rest[start + 3..];
            let Some(end) = tail.find("`**") else { break };
            tags.push((idx + 1, tail[..end].to_string()));
            rest = &tail[end + 3..];
        }
    }
    tags
}

/// Cross-checks the two registries; `design_rel` names the document in
/// findings (the real pass uses `DESIGN.md`, fixtures use their own path).
pub fn check_ordering_registry(
    design_rel: &str,
    design: &str,
    sites: &[OrderSite],
) -> Vec<Finding> {
    let documented = design_ordering_tags(design);
    let mut findings = Vec::new();
    for site in sites {
        if !documented.iter().any(|(_, tag)| *tag == site.tag) {
            findings.push(Finding {
                path: site.path.clone(),
                line: site.line,
                rule: "ordering-registry-drift",
                message: format!(
                    "ordering site `{}` has no `**`{}`**` entry in {design_rel} \
                     § \"{DESIGN_SECTION}\" — document the argument for this ordering",
                    site.tag, site.tag
                ),
            });
        }
    }
    let mut seen_design: Vec<&str> = Vec::new();
    for (line, tag) in &documented {
        if seen_design.contains(&tag.as_str()) {
            continue;
        }
        seen_design.push(tag);
        if !sites.iter().any(|s| s.tag == *tag) {
            findings.push(Finding {
                path: design_rel.to_string(),
                line: *line,
                rule: "ordering-registry-drift",
                message: format!(
                    "documented ordering site `{tag}` has no `order!(…, \"{tag}\")` \
                     occurrence under {SITE_SCOPE} — the named-site table has drifted \
                     from the code"
                ),
            });
        }
    }
    findings
}
