//! Repo automation: the custom static lint pass behind `cargo xtask lint`.
//!
//! The pass enforces the concurrency-hygiene rules that `rustc` and clippy
//! cannot express. The original rule set centred on the lock-free core:
//!
//! - **`ordering-comment`** — every atomic operation in library code under
//!   `crates/*/src` carries an adjacent `// ordering:` comment justifying
//!   its memory ordering (see DESIGN.md "Memory-ordering arguments").
//! - **`relaxed-allowlist`** — `Relaxed` orderings may appear only in the
//!   allowlisted files whose Relaxed sites have been argued through
//!   (cancel flags, statistics counters, the `order!` macro itself).
//! - **`forbid-unsafe`** — every crate root starts with
//!   `#![forbid(unsafe_code)]`, as defence-in-depth on top of the
//!   workspace-level `unsafe_code = "forbid"` lint.
//! - **`no-unwrap`** — no `.unwrap()` / `.expect(` in non-test library
//!   code of the `core` and `bigraph` crates (test modules are exempt).
//! - **`atomic-facade`** — code under `crates/core/src/parallel/` must go
//!   through `crate::sync::atomic`, never `std::sync::atomic` directly,
//!   so the model checker sees every operation.
//! - **`dead-code-allow`** — `allow(dead_code)` is banned workspace-wide;
//!   dead code is deleted, not silenced.
//! - **`kernel-dispatch`** — the raw intersection kernels
//!   (`*_intersection_len`) are `bigraph`-internal; every other crate must
//!   go through `intersect::dispatch` so the measured crossover heuristic
//!   and the per-thread `--kernel` override stay authoritative.
//!
//! The scope-aware rules cover the blocking-concurrency half of the
//! codebase (the serve scheduler's mutex+condvar core), built on a real
//! token stream ([`syntax`]) and an intra-procedural guard-liveness
//! dataflow ([`guards`]):
//!
//! - **`lock-order`** — nested lock acquisitions must follow the declared
//!   per-crate hierarchy ([`guards::LOCK_HIERARCHIES`]); re-acquiring a
//!   held lock is a self-deadlock finding.
//! - **`guard-across-blocking`** — no guard may be held across blocking
//!   I/O, channel ops or joins unless the exact site is declared in
//!   [`guards::GUARD_BLOCKING_ALLOWLIST`] with its invariant.
//! - **`condvar-wait-loop`** — `Condvar::wait`/`wait_timeout` must sit
//!   under a `while`/`loop`, never a bare `if` or straight-line call.
//! - **`ordering-registry-drift`** — the `order!(…, "site")` tags under
//!   `crates/core/src/parallel/` and the named-site table in DESIGN.md
//!   § "Memory-ordering arguments" must agree in both directions
//!   ([`registry`]).
//!
//! Everything is hand-rolled (no syn/proc-macro dependencies — the
//! container is offline): [`syntax::SourceFile::parse`] lexes each file
//! **once** into a token stream plus masked lines, and every rule family
//! shares that one parse. `#[cfg(test)]` module extents are tracked by
//! brace depth over the masked lines. Fixture files under
//! `xtask/tests/fixtures/` encode their virtual location in a
//! `// lint-as:` header so the integration tests can drive each rule
//! without polluting the real tree. The `--report` flag writes the JSON
//! artifact documented in [`report`] and `xtask/README.md`.

#![forbid(unsafe_code)]

pub mod guards;
pub mod registry;
pub mod report;
pub mod syntax;

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

use syntax::SourceFile;

/// One lint violation, pointing at a workspace-relative path and line.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    /// Stable rule identifier, e.g. `no-unwrap`.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.message)
    }
}

/// A finished workspace pass: the findings plus the cost figures the
/// `--report` artifact pins.
#[derive(Debug)]
pub struct LintRun {
    /// Every finding, in path order then line order.
    pub findings: Vec<Finding>,
    /// `.rs` files parsed.
    pub files_scanned: usize,
    /// Wall-clock cost of the whole pass (parse + all rules).
    pub elapsed_ms: u128,
}

/// Files allowed to mention `Relaxed` in code: each has per-site
/// `// ordering:` arguments recorded in DESIGN.md.
const RELAXED_ALLOWLIST: &[&str] = &[
    "crates/core/src/sync.rs",          // the order! macro's mutation arm
    "crates/core/src/parallel/mod.rs",  // cancel-flag polls
    "crates/core/src/parallel/seen.rs", // stripe hint + len statistic
    "crates/core/src/api.rs",           // cancel/undelivered advisory flags
];

/// Crates whose library code must be panic-free (`no-unwrap` rule).
const NO_UNWRAP_SCOPES: &[&str] = &["crates/core/src/", "crates/bigraph/src/"];

/// How many lines above an atomic operation the `// ordering:` comment may
/// sit (multi-line justifications push the operation down).
const ORDERING_COMMENT_WINDOW: usize = 10;

/// Atomic operations are recognised as one of these method calls on a line
/// that also names an ordering (every real call site passes one).
const ATOMIC_METHODS: &[&str] =
    &[".load(", ".store(", ".swap(", ".compare_exchange", ".compare_and_swap", ".fetch_"];

/// Directories that own workspace members, plus the umbrella crate's own
/// source/test/example trees at the workspace root.
const MEMBER_ROOTS: &[&str] = &["crates", "vendor", "xtask", "src", "tests", "examples"];

/// The banned suppression attribute, assembled at runtime so the linter's
/// own source does not trip the workspace-wide scan.
fn dead_code_needle() -> String {
    ["allow(", "dead_code)"].concat()
}

/// The raw intersection kernels only `bigraph` itself may name; everyone
/// else goes through `intersect::dispatch`. Assembled at runtime for the
/// same self-exemption reason as [`dead_code_needle`].
fn raw_kernel_needles() -> [String; 4] {
    ["merge", "gallop", "chunked", "bitset"].map(|k| [k, "_intersection", "_len"].concat())
}

/// Marks each line (0-indexed) that sits inside a `#[cfg(test)]` block,
/// by brace depth over the masked lines. The attribute line and the
/// opening-brace line themselves are not marked; the closing-brace line
/// is. Shared by the line rules and the guard dataflow so both exempt the
/// same test code.
#[must_use]
pub fn test_line_mask(sf: &SourceFile) -> Vec<bool> {
    let mut mask = vec![false; sf.code_lines.len()];
    // Brace depths at which `#[cfg(test)]` blocks opened; non-empty means
    // the current line is inside test-only code.
    let mut test_depths: Vec<i32> = Vec::new();
    let mut depth: i32 = 0;
    let mut pending_cfg_test = false;
    for (idx, code) in sf.code_lines.iter().enumerate() {
        let trimmed = code.trim_start();
        if trimmed.starts_with("#[cfg(test)]") || trimmed.starts_with("#[cfg(all(test") {
            pending_cfg_test = true;
        }
        mask[idx] = !test_depths.is_empty();
        let opens = code.matches('{').count() as i32;
        let closes = code.matches('}').count() as i32;
        if pending_cfg_test {
            if opens > 0 {
                test_depths.push(depth);
                pending_cfg_test = false;
            } else if code.contains(';') {
                // `#[cfg(test)]` on a braceless item (use, extern crate).
                pending_cfg_test = false;
            }
        }
        depth += opens - closes;
        while test_depths.last().is_some_and(|d| depth <= *d) {
            test_depths.pop();
        }
    }
    mask
}

/// Lints one source file as if it lived at the workspace-relative `rel`
/// path. Public so the fixture tests can lint snippets under virtual
/// paths; [`lint_workspace`] parses each real file once and calls
/// [`lint_parsed`] directly.
#[must_use]
pub fn lint_source(rel: &str, source: &str) -> Vec<Finding> {
    lint_parsed(rel, &SourceFile::parse(source))
}

/// Runs every per-file rule family over one already-parsed file: the
/// line-oriented rules on the masked lines and the guard-liveness rules
/// on the token stream. (The cross-file `ordering-registry-drift` rule
/// lives in [`lint_workspace`].)
#[must_use]
pub fn lint_parsed(rel: &str, sf: &SourceFile) -> Vec<Finding> {
    let mask = test_line_mask(sf);
    let mut findings = lint_lines(rel, sf, &mask);
    findings.extend(guards::analyze(rel, sf, &mask));
    findings.sort_by_key(|f| f.line);
    findings
}

/// The legacy line-oriented rules, over the masked lines of one parse.
fn lint_lines(rel: &str, sf: &SourceFile, test_mask: &[bool]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let in_crate_src = rel.starts_with("crates/") && rel.contains("/src/");
    let in_parallel = rel.starts_with("crates/core/src/parallel/");
    let unwrap_scope = NO_UNWRAP_SCOPES.iter().any(|s| rel.starts_with(s));
    let relaxed_allowed = RELAXED_ALLOWLIST.contains(&rel);
    let dead_needle = dead_code_needle();
    let kernel_needles = raw_kernel_needles();
    let outside_bigraph = !rel.starts_with("crates/bigraph/src/");

    for (idx, code) in sf.code_lines.iter().enumerate() {
        let lineno = idx + 1;
        let in_test_block = test_mask.get(idx).copied().unwrap_or(false);

        // Rule: dead-code-allow (workspace-wide, tests included).
        if code.contains(&dead_needle) {
            findings.push(Finding {
                path: rel.to_string(),
                line: lineno,
                rule: "dead-code-allow",
                message: format!("`{dead_needle}` is banned: delete dead code instead"),
            });
        }

        // Rule: kernel-dispatch (raw kernels are bigraph-internal; the
        // rule is workspace-wide — tests included — because even test
        // callers should cross-validate through the dispatcher).
        if outside_bigraph {
            if let Some(needle) = kernel_needles.iter().find(|n| code.contains(n.as_str())) {
                findings.push(Finding {
                    path: rel.to_string(),
                    line: lineno,
                    rule: "kernel-dispatch",
                    message: format!(
                        "`{needle}` bypasses `intersect::dispatch`: call the dispatcher so \
                         the crossover heuristic and `--kernel` override apply"
                    ),
                });
            }
        }

        // Rule: atomic-facade (parallel/ must use crate::sync::atomic).
        if in_parallel && code.contains("std::sync::atomic") {
            findings.push(Finding {
                path: rel.to_string(),
                line: lineno,
                rule: "atomic-facade",
                message: "use crate::sync::atomic so the model checker sees this operation"
                    .to_string(),
            });
        }

        if in_crate_src && !in_test_block {
            // Rule: ordering-comment.
            let is_atomic_op = (code.contains("Ordering::") || code.contains("order!("))
                && ATOMIC_METHODS.iter().any(|m| code.contains(m));
            if is_atomic_op {
                let start = idx.saturating_sub(ORDERING_COMMENT_WINDOW);
                let justified =
                    sf.raw_lines[start..=idx].iter().any(|l| l.contains("// ordering:"));
                if !justified {
                    findings.push(Finding {
                        path: rel.to_string(),
                        line: lineno,
                        rule: "ordering-comment",
                        message: "atomic operation without an adjacent `// ordering:` \
                                  justification comment"
                            .to_string(),
                    });
                }
            }

            // Rule: relaxed-allowlist.
            if !relaxed_allowed && code.contains("Relaxed") {
                findings.push(Finding {
                    path: rel.to_string(),
                    line: lineno,
                    rule: "relaxed-allowlist",
                    message: format!(
                        "`Relaxed` ordering outside the allowlist ({})",
                        RELAXED_ALLOWLIST.join(", ")
                    ),
                });
            }

            // Rule: no-unwrap.
            if unwrap_scope && (code.contains(".unwrap()") || code.contains(".expect(")) {
                findings.push(Finding {
                    path: rel.to_string(),
                    line: lineno,
                    rule: "no-unwrap",
                    message: "`.unwrap()`/`.expect()` in non-test library code: return an \
                              error or restructure so the invariant is type-enforced"
                        .to_string(),
                });
            }
        }
    }
    findings
}

/// Checks that a crate-root file opts into `#![forbid(unsafe_code)]`.
fn lint_crate_root(rel: &str, source: &str) -> Option<Finding> {
    if source.contains("#![forbid(unsafe_code)]") {
        None
    } else {
        Some(Finding {
            path: rel.to_string(),
            line: 0,
            rule: "forbid-unsafe",
            message: "crate root must contain `#![forbid(unsafe_code)]`".to_string(),
        })
    }
}

/// Recursively collects `.rs` files under `dir`, skipping `target` build
/// output and the intentionally-violating `fixtures`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Workspace root, resolved from the linter's own manifest directory.
#[must_use]
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).parent().map(Path::to_path_buf).unwrap_or_default()
}

/// Runs the whole pass over the workspace rooted at `root`: each file is
/// parsed once, every per-file rule family shares the parse, and the
/// cross-file ordering-registry check runs at the end over the `order!`
/// sites collected along the way.
#[must_use]
pub fn lint_workspace(root: &Path) -> LintRun {
    let started = Instant::now();
    let mut files = Vec::new();
    for member_root in MEMBER_ROOTS {
        collect_rs(&root.join(member_root), &mut files);
    }
    files.sort();

    let mut findings = Vec::new();
    let mut order_sites = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        let Ok(source) = fs::read_to_string(path) else {
            findings.push(Finding {
                path: rel,
                line: 0,
                rule: "io",
                message: "file exists but could not be read as UTF-8".to_string(),
            });
            continue;
        };
        let is_crate_root = rel.ends_with("/src/lib.rs") || rel.ends_with("/src/main.rs");
        if is_crate_root {
            findings.extend(lint_crate_root(&rel, &source));
        }
        let sf = SourceFile::parse(&source);
        if rel.starts_with(registry::SITE_SCOPE) {
            order_sites.extend(registry::collect_order_sites(&rel, &sf));
        }
        findings.extend(lint_parsed(&rel, &sf));
    }

    // Cross-file rule: ordering-registry-drift.
    let design = fs::read_to_string(root.join("DESIGN.md")).unwrap_or_default();
    findings.extend(registry::check_ordering_registry("DESIGN.md", &design, &order_sites));

    LintRun { findings, files_scanned: files.len(), elapsed_ms: started.elapsed().as_millis() }
}

/// Entry point for the `xtask` binary; returns the process exit code.
///
/// `cargo xtask lint [--report <path>]` — run the pass over the workspace;
/// findings go to stderr, and the report file gets the JSON artifact
/// documented in [`report`]. Exit code 0 = clean, 1 = findings, 2 = usage
/// error.
pub fn run(mut args: impl Iterator<Item = String>) -> i32 {
    match args.next().as_deref() {
        Some("lint") => {
            let mut report_path: Option<PathBuf> = None;
            while let Some(flag) = args.next() {
                match flag.as_str() {
                    "--report" => match args.next() {
                        Some(p) => report_path = Some(PathBuf::from(p)),
                        None => {
                            eprintln!("--report requires a path");
                            return 2;
                        }
                    },
                    other => {
                        eprintln!("unknown flag: {other}");
                        return 2;
                    }
                }
            }
            let root = workspace_root();
            let lint_run = lint_workspace(&root);
            if let Some(path) = report_path {
                if let Err(e) = fs::write(&path, report::render(&lint_run)) {
                    eprintln!("failed to write report {}: {e}", path.display());
                    return 2;
                }
            }
            for finding in &lint_run.findings {
                eprintln!("{finding}");
            }
            let (n, scanned, ms) =
                (lint_run.findings.len(), lint_run.files_scanned, lint_run.elapsed_ms);
            if n == 0 {
                eprintln!("lint: clean ({scanned} files, {ms} ms)");
                0
            } else {
                eprintln!("lint: {n} finding(s) in {scanned} files ({ms} ms)");
                1
            }
        }
        other => {
            eprintln!("usage: cargo xtask lint [--report <path>]");
            if let Some(other) = other {
                eprintln!("unknown subcommand: {other}");
            }
            2
        }
    }
}
