//! Repo automation: the custom static lint pass behind `cargo xtask lint`.
//!
//! The pass enforces the concurrency-hygiene rules that `rustc` and clippy
//! cannot express, all centred on the lock-free core:
//!
//! - **`ordering-comment`** — every atomic operation in library code under
//!   `crates/*/src` carries an adjacent `// ordering:` comment justifying
//!   its memory ordering (see DESIGN.md "Memory-ordering arguments").
//! - **`relaxed-allowlist`** — `Relaxed` orderings may appear only in the
//!   allowlisted files whose Relaxed sites have been argued through
//!   (cancel flags, statistics counters, the `order!` macro itself).
//! - **`forbid-unsafe`** — every crate root starts with
//!   `#![forbid(unsafe_code)]`, as defence-in-depth on top of the
//!   workspace-level `unsafe_code = "forbid"` lint.
//! - **`no-unwrap`** — no `.unwrap()` / `.expect(` in non-test library
//!   code of the `core` and `bigraph` crates (test modules are exempt).
//! - **`atomic-facade`** — code under `crates/core/src/parallel/` must go
//!   through `crate::sync::atomic`, never `std::sync::atomic` directly,
//!   so the model checker sees every operation.
//! - **`dead-code-allow`** — `allow(dead_code)` is banned workspace-wide;
//!   dead code is deleted, not silenced.
//! - **`kernel-dispatch`** — the raw intersection kernels
//!   (`*_intersection_len`) are `bigraph`-internal; every other crate must
//!   go through `intersect::dispatch` so the measured crossover heuristic
//!   and the per-thread `--kernel` override stay authoritative.
//!
//! The scanner is deliberately textual (no syn/proc-macro dependencies —
//! the container is offline): it strips line comments, block comments and
//! string/char literals with a small state machine, tracks `#[cfg(test)]`
//! module extents by brace depth, and applies the path-scoped rules above
//! line by line. Fixture files under `xtask/tests/fixtures/` encode their
//! virtual location in a `// lint-as:` header so the integration tests can
//! drive each rule without polluting the real tree.

#![forbid(unsafe_code)]

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// One lint violation, pointing at a workspace-relative path and line.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    /// Stable rule identifier, e.g. `no-unwrap`.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.message)
    }
}

/// Files allowed to mention `Relaxed` in code: each has per-site
/// `// ordering:` arguments recorded in DESIGN.md.
const RELAXED_ALLOWLIST: &[&str] = &[
    "crates/core/src/sync.rs",          // the order! macro's mutation arm
    "crates/core/src/parallel/mod.rs",  // cancel-flag polls
    "crates/core/src/parallel/seen.rs", // stripe hint + len statistic
    "crates/core/src/api.rs",           // cancel/undelivered advisory flags
];

/// Crates whose library code must be panic-free (`no-unwrap` rule).
const NO_UNWRAP_SCOPES: &[&str] = &["crates/core/src/", "crates/bigraph/src/"];

/// How many lines above an atomic operation the `// ordering:` comment may
/// sit (multi-line justifications push the operation down).
const ORDERING_COMMENT_WINDOW: usize = 10;

/// Atomic operations are recognised as one of these method calls on a line
/// that also names an ordering (every real call site passes one).
const ATOMIC_METHODS: &[&str] =
    &[".load(", ".store(", ".swap(", ".compare_exchange", ".compare_and_swap", ".fetch_"];

/// Directories that own workspace members, plus the umbrella crate's own
/// source/test/example trees at the workspace root.
const MEMBER_ROOTS: &[&str] = &["crates", "vendor", "xtask", "src", "tests", "examples"];

/// The banned suppression attribute, assembled at runtime so the linter's
/// own source does not trip the workspace-wide scan.
fn dead_code_needle() -> String {
    ["allow(", "dead_code)"].concat()
}

/// The raw intersection kernels only `bigraph` itself may name; everyone
/// else goes through `intersect::dispatch`. Assembled at runtime for the
/// same self-exemption reason as [`dead_code_needle`].
fn raw_kernel_needles() -> [String; 4] {
    ["merge", "gallop", "chunked", "bitset"].map(|k| [k, "_intersection", "_len"].concat())
}

/// Strips string literals, char literals and comments from one line,
/// carrying block-comment state across lines. Returns the code portion;
/// literals collapse to `""`/`' '` so tokens cannot hide inside them.
fn strip_line(line: &str, in_block_comment: &mut bool) -> String {
    let bytes: Vec<char> = line.chars().collect();
    let mut out = String::with_capacity(line.len());
    let mut i = 0;
    while i < bytes.len() {
        if *in_block_comment {
            if bytes[i] == '*' && bytes.get(i + 1) == Some(&'/') {
                *in_block_comment = false;
                i += 2;
            } else {
                i += 1;
            }
            continue;
        }
        match bytes[i] {
            '/' if bytes.get(i + 1) == Some(&'/') => break, // line comment
            '/' if bytes.get(i + 1) == Some(&'*') => {
                *in_block_comment = true;
                i += 2;
            }
            '"' => {
                out.push('"');
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        '\\' => i += 2,
                        '"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                out.push('"');
            }
            '\'' => {
                // Distinguish a char literal from a lifetime: a lifetime is
                // `'` + ident with no closing quote right after.
                let is_lifetime = bytes.get(i + 1).is_some_and(|c| c.is_alphabetic() || *c == '_')
                    && bytes.get(i + 2) != Some(&'\'');
                if is_lifetime {
                    out.push('\'');
                    i += 1;
                } else {
                    out.push('\'');
                    out.push(' ');
                    out.push('\'');
                    i += 1;
                    while i < bytes.len() {
                        match bytes[i] {
                            '\\' => i += 2,
                            '\'' => {
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

/// Lints one source file as if it lived at the workspace-relative `rel`
/// path. Public so the fixture tests can lint snippets under virtual
/// paths; [`lint_workspace`] uses it for every real file.
pub fn lint_source(rel: &str, source: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let in_crate_src = rel.starts_with("crates/") && rel.contains("/src/");
    let in_parallel = rel.starts_with("crates/core/src/parallel/");
    let unwrap_scope = NO_UNWRAP_SCOPES.iter().any(|s| rel.starts_with(s));
    let relaxed_allowed = RELAXED_ALLOWLIST.contains(&rel);
    let dead_needle = dead_code_needle();
    let kernel_needles = raw_kernel_needles();
    let outside_bigraph = !rel.starts_with("crates/bigraph/src/");

    let raw_lines: Vec<&str> = source.lines().collect();
    let mut in_block_comment = false;
    // Brace depths at which `#[cfg(test)]` blocks opened; non-empty means
    // the current line is inside test-only code.
    let mut test_depths: Vec<i32> = Vec::new();
    let mut depth: i32 = 0;
    let mut pending_cfg_test = false;

    for (idx, raw) in raw_lines.iter().enumerate() {
        let lineno = idx + 1;
        let code = strip_line(raw, &mut in_block_comment);
        let trimmed = code.trim_start();
        if trimmed.starts_with("#[cfg(test)]") || trimmed.starts_with("#[cfg(all(test") {
            pending_cfg_test = true;
        }
        let in_test_block = !test_depths.is_empty();

        // Rule: dead-code-allow (workspace-wide, tests included).
        if code.contains(&dead_needle) {
            findings.push(Finding {
                path: rel.to_string(),
                line: lineno,
                rule: "dead-code-allow",
                message: format!("`{dead_needle}` is banned: delete dead code instead"),
            });
        }

        // Rule: kernel-dispatch (raw kernels are bigraph-internal; the
        // rule is workspace-wide — tests included — because even test
        // callers should cross-validate through the dispatcher).
        if outside_bigraph {
            if let Some(needle) = kernel_needles.iter().find(|n| code.contains(n.as_str())) {
                findings.push(Finding {
                    path: rel.to_string(),
                    line: lineno,
                    rule: "kernel-dispatch",
                    message: format!(
                        "`{needle}` bypasses `intersect::dispatch`: call the dispatcher so \
                         the crossover heuristic and `--kernel` override apply"
                    ),
                });
            }
        }

        // Rule: atomic-facade (parallel/ must use crate::sync::atomic).
        if in_parallel && code.contains("std::sync::atomic") {
            findings.push(Finding {
                path: rel.to_string(),
                line: lineno,
                rule: "atomic-facade",
                message: "use crate::sync::atomic so the model checker sees this operation"
                    .to_string(),
            });
        }

        if in_crate_src && !in_test_block {
            // Rule: ordering-comment.
            let is_atomic_op = (code.contains("Ordering::") || code.contains("order!("))
                && ATOMIC_METHODS.iter().any(|m| code.contains(m));
            if is_atomic_op {
                let start = idx.saturating_sub(ORDERING_COMMENT_WINDOW);
                let justified = raw_lines[start..=idx].iter().any(|l| l.contains("// ordering:"));
                if !justified {
                    findings.push(Finding {
                        path: rel.to_string(),
                        line: lineno,
                        rule: "ordering-comment",
                        message: "atomic operation without an adjacent `// ordering:` \
                                  justification comment"
                            .to_string(),
                    });
                }
            }

            // Rule: relaxed-allowlist.
            if !relaxed_allowed && code.contains("Relaxed") {
                findings.push(Finding {
                    path: rel.to_string(),
                    line: lineno,
                    rule: "relaxed-allowlist",
                    message: format!(
                        "`Relaxed` ordering outside the allowlist ({})",
                        RELAXED_ALLOWLIST.join(", ")
                    ),
                });
            }

            // Rule: no-unwrap.
            if unwrap_scope && (code.contains(".unwrap()") || code.contains(".expect(")) {
                findings.push(Finding {
                    path: rel.to_string(),
                    line: lineno,
                    rule: "no-unwrap",
                    message: "`.unwrap()`/`.expect()` in non-test library code: return an \
                              error or restructure so the invariant is type-enforced"
                        .to_string(),
                });
            }
        }

        // Track brace depth and `#[cfg(test)]` block extents.
        let opens = code.matches('{').count() as i32;
        let closes = code.matches('}').count() as i32;
        if pending_cfg_test {
            if opens > 0 {
                test_depths.push(depth);
                pending_cfg_test = false;
            } else if code.contains(';') {
                // `#[cfg(test)]` on a braceless item (use, extern crate).
                pending_cfg_test = false;
            }
        }
        depth += opens - closes;
        while test_depths.last().is_some_and(|d| depth <= *d) {
            test_depths.pop();
        }
    }
    findings
}

/// Checks that a crate-root file opts into `#![forbid(unsafe_code)]`.
fn lint_crate_root(rel: &str, source: &str) -> Option<Finding> {
    if source.contains("#![forbid(unsafe_code)]") {
        None
    } else {
        Some(Finding {
            path: rel.to_string(),
            line: 0,
            rule: "forbid-unsafe",
            message: "crate root must contain `#![forbid(unsafe_code)]`".to_string(),
        })
    }
}

/// Recursively collects `.rs` files under `dir`, skipping `target` build
/// output and the intentionally-violating `fixtures`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Workspace root, resolved from the linter's own manifest directory.
#[must_use]
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).parent().map(Path::to_path_buf).unwrap_or_default()
}

/// Runs the whole pass over the workspace rooted at `root`. Returns every
/// finding plus the number of files scanned.
pub fn lint_workspace(root: &Path) -> (Vec<Finding>, usize) {
    let mut files = Vec::new();
    for member_root in MEMBER_ROOTS {
        collect_rs(&root.join(member_root), &mut files);
    }
    files.sort();

    let mut findings = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        let Ok(source) = fs::read_to_string(path) else {
            findings.push(Finding {
                path: rel,
                line: 0,
                rule: "io",
                message: "file exists but could not be read as UTF-8".to_string(),
            });
            continue;
        };
        let is_crate_root = rel.ends_with("/src/lib.rs") || rel.ends_with("/src/main.rs");
        if is_crate_root {
            findings.extend(lint_crate_root(&rel, &source));
        }
        findings.extend(lint_source(&rel, &source));
    }
    (findings, files.len())
}

/// Entry point for the `xtask` binary; returns the process exit code.
///
/// `cargo xtask lint [--report <path>]` — run the pass over the workspace;
/// findings go to stderr (and to the report file, one per line, for the CI
/// artifact). Exit code 0 = clean, 1 = findings, 2 = usage error.
pub fn run(mut args: impl Iterator<Item = String>) -> i32 {
    match args.next().as_deref() {
        Some("lint") => {
            let mut report: Option<PathBuf> = None;
            while let Some(flag) = args.next() {
                match flag.as_str() {
                    "--report" => match args.next() {
                        Some(p) => report = Some(PathBuf::from(p)),
                        None => {
                            eprintln!("--report requires a path");
                            return 2;
                        }
                    },
                    other => {
                        eprintln!("unknown flag: {other}");
                        return 2;
                    }
                }
            }
            let root = workspace_root();
            let (findings, scanned) = lint_workspace(&root);
            if let Some(path) = report {
                let mut body: String = findings.iter().map(|f| format!("{f}\n")).collect();
                if body.is_empty() {
                    body = format!("clean: no findings in {scanned} files\n");
                }
                if let Err(e) = fs::write(&path, body) {
                    eprintln!("failed to write report {}: {e}", path.display());
                    return 2;
                }
            }
            for finding in &findings {
                eprintln!("{finding}");
            }
            if findings.is_empty() {
                eprintln!("lint: clean ({scanned} files)");
                0
            } else {
                eprintln!("lint: {} finding(s) in {scanned} files", findings.len());
                1
            }
        }
        other => {
            eprintln!("usage: cargo xtask lint [--report <path>]");
            if let Some(other) = other {
                eprintln!("unknown subcommand: {other}");
            }
            2
        }
    }
}
