// lint-as: crates/core/src/parallel/fixture2.rs
// expect-rule: atomic-facade
use std::sync::atomic::AtomicBool;

pub struct Flag(pub AtomicBool);
