// lint-as: crates/serve/src/mutant.rs
// expect-rule: lock-order
//! Seeded mutant: acquires the published-graph lock, then the scheduler
//! lock — the reverse of the declared `sched < dynamic < current`
//! hierarchy. An update thread holding `dynamic` while waiting for
//! `current` plus this thread holding `current` while waiting for `sched`
//! (held by a worker that wants `current`) is a deadlock cycle.

use std::sync::{Mutex, MutexGuard};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

pub fn pick_job_against_snapshot(shared: &Shared) -> usize {
    let current = lock(&shared.current);
    let sched = lock(&shared.sched);
    sched.queue.len().min(current.num_left())
}
