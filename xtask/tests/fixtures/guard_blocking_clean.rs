// lint-as: crates/serve/src/clean.rs
// expect-rule: clean
//! Near-miss that must pass: the same locks and the same blocking calls
//! as the `guard_blocking` mutant, but every guard is released — by scope
//! exit or an explicit `drop` — before the blocking call runs.

use std::io::Write;
use std::net::TcpStream;
use std::sync::{Mutex, MutexGuard};
use std::thread::JoinHandle;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

pub fn respond(shared: &Shared, stream: &mut TcpStream, id: u64) {
    let payload = {
        let sched = lock(&shared.sched);
        sched.render(id)
    };
    // The guard died at the block's end; the socket write is lock-free.
    let _ = stream.write_all(payload.as_bytes());
}

pub fn shutdown_worker(shared: &Shared, handle: JoinHandle<()>) {
    let mut sched = lock(&shared.sched);
    sched.accepting = false;
    drop(sched);
    let _ = handle.join();
}
