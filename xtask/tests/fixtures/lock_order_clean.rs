// lint-as: crates/serve/src/clean.rs
// expect-rule: clean
//! Near-miss that must pass: the same three locks as the `lock_order`
//! mutant, but every nesting follows the declared `sched < dynamic <
//! current` hierarchy, and the one out-of-order acquisition happens only
//! after the earlier guard is explicitly dropped.

use std::sync::{Mutex, MutexGuard};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

pub fn apply_batch(shared: &Shared, batch: &[Edge]) {
    let mut dynamic = lock(&shared.dynamic);
    for edge in batch {
        dynamic.apply(edge);
    }
    // Publishing under `dynamic` is in hierarchy order (dynamic < current);
    // the publication guard itself is a statement-scoped temporary.
    *lock(&shared.current) = dynamic.snapshot();
    drop(dynamic);
    // `sched` ranks before both graph locks, but nothing is held anymore.
    let mut sched = lock(&shared.sched);
    sched.generation += 1;
}
