// lint-as: crates/serve/src/mutant.rs
// expect-rule: guard-across-blocking
//! Seeded mutant: holds the connection-registry guard across per-stream
//! socket writes. One slow peer stalls every thread that needs the
//! registry — exactly the hold the rule exists to catch, and (unlike the
//! per-connection `out` mutex in `server.rs`) there is no allowlist entry
//! declaring an invariant for it.

use std::io::Write;
use std::net::TcpStream;
use std::sync::{Mutex, MutexGuard};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

pub fn broadcast(conns: &Mutex<Vec<TcpStream>>, payload: &[u8]) {
    let mut conns = lock(conns);
    for stream in conns.iter_mut() {
        let _ = stream.write_all(payload);
    }
}
