// lint-as: crates/core/src/parallel/work_steal.rs
// expect-rule: relaxed-allowlist
use crate::sync::atomic::{AtomicUsize, Ordering};

pub fn peek(pending: &AtomicUsize) -> usize {
    // ordering: Relaxed — (this justification does not make the site legal:
    // work_steal.rs is not on the Relaxed allowlist)
    pending.load(Ordering::Relaxed)
}
