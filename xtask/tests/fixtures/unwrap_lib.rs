// lint-as: crates/core/src/fixture.rs
// expect-rule: no-unwrap

pub fn head(items: &[u32]) -> u32 {
    *items.first().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let items = vec![1u32];
        assert_eq!(*items.first().unwrap(), 1);
    }
}
