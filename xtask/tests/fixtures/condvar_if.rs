// lint-as: crates/serve/src/mutant.rs
// expect-rule: condvar-wait-loop
//! Seeded mutant: waits on the work condvar under a bare `if`. A spurious
//! wakeup — or a signal consumed by another worker between the notify and
//! this thread's wake — leaves the queue empty and the pop below returns
//! nothing although the caller was promised a job eventually; the
//! predicate must be re-checked in a loop around the wait.

pub fn take_job(shared: &Shared) -> Option<Job> {
    let mut sched = lock(&shared.sched);
    if sched.queue.is_empty() {
        sched = shared.work.wait(sched).unwrap();
    }
    sched.queue.pop_front()
}
