// Registry fixture: two `order!` sites, one documented in the paired
// design excerpt (`design.md`), one phantom. Driven directly by the
// `registry` tests in tests/lint.rs, not by the fixture runner (only
// top-level fixture files carry `lint-as` headers).

pub fn publish(flag: &AtomicBool, count: &AtomicUsize, n: usize) {
    // ordering: SeqCst — documented site, must not be reported.
    count.store(n, order!(SeqCst, "seen-exit-stripe"));
    // ordering: SeqCst — phantom site, must be reported as drift.
    flag.store(true, order!(SeqCst, "phantom-site"));
}
