// lint-as: crates/serve/src/clean.rs
// expect-rule: clean
//! Near-miss that must pass: the same condvar as the `condvar_if` mutant,
//! waited on correctly — a plain `wait` re-checked inside a `loop`, and a
//! `wait_timeout_while` under a bare `if`, which is fine because the
//! `*_while` variants re-check their predicate internally.

use std::time::Duration;

pub fn next_job(shared: &Shared) -> Job {
    let mut sched = lock(&shared.sched);
    loop {
        if let Some(job) = sched.queue.pop_front() {
            break job;
        }
        sched = shared.work.wait(sched).unwrap();
    }
}

pub fn settle(shared: &Shared) -> bool {
    let sched = lock(&shared.sched);
    if sched.queue.is_empty() {
        return true;
    }
    let (sched, timeout) = shared
        .work
        .wait_timeout_while(sched, Duration::from_millis(50), |s| !s.queue.is_empty())
        .unwrap();
    drop(sched);
    !timeout.timed_out()
}
