// lint-as: crates/core/src/parallel/fixture.rs
// expect-rule: ordering-comment
use crate::sync::atomic::{AtomicUsize, Ordering};

pub fn bump(counter: &AtomicUsize) -> usize {
    counter.fetch_add(1, Ordering::SeqCst)
}
