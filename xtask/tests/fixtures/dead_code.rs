// lint-as: crates/bench/src/fixture.rs
// expect-rule: dead-code-allow

#[allow(dead_code)]
fn unused_helper() {}
