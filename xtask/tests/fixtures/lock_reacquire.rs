// lint-as: crates/serve/src/mutant.rs
// expect-rule: lock-order
//! Seeded mutant: re-acquires a lock whose guard is still live. Std
//! mutexes are not reentrant, so this self-deadlocks on the spot — the
//! rule reports it as a `lock-order` finding with a re-acquisition
//! message.

pub fn drain_and_count(shared: &Shared) -> usize {
    let mut sched = shared.sched.lock().unwrap();
    sched.queue.clear();
    let again = shared.sched.lock().unwrap();
    again.queue.len()
}
