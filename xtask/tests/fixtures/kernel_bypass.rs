// lint-as: crates/core/src/extend.rs
// expect-rule: kernel-dispatch
use bigraph::intersect::gallop_intersection_len;

pub fn common_neighbors(a: &[u32], b: &[u32]) -> usize {
    // Calling a raw kernel pins one algorithm: it skips the measured
    // crossover heuristic and ignores the engine's `--kernel` override.
    gallop_intersection_len(a, b)
}
