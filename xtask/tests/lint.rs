//! Integration tests for the custom lint pass: every violation fixture
//! must be flagged with its expected rule, every near-miss clean fixture
//! must pass, the `--report` JSON artifact must parse under an
//! independent parser, and the real workspace must be clean.

use std::fs;
use std::path::{Path, PathBuf};

use xtask::syntax::SourceFile;
use xtask::{lint_source, lint_workspace, registry, report, workspace_root, Finding, LintRun};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn read_fixture(name: &str) -> String {
    fs::read_to_string(fixtures_dir().join(name)).expect("fixture readable")
}

/// Parses the `// lint-as:` / `// expect-rule:` fixture header.
fn fixture_header(source: &str) -> (String, String) {
    let mut lint_as = None;
    let mut expect = None;
    for line in source.lines().take(4) {
        if let Some(rest) = line.strip_prefix("// lint-as: ") {
            lint_as = Some(rest.trim().to_string());
        }
        if let Some(rest) = line.strip_prefix("// expect-rule: ") {
            expect = Some(rest.trim().to_string());
        }
    }
    (
        lint_as.expect("fixture missing `// lint-as:` header"),
        expect.expect("fixture missing `// expect-rule:` header"),
    )
}

/// Every top-level fixture either seeds a violation its rule must refute
/// (`// expect-rule: <rule>`) or is a near-miss that must pass clean
/// (`// expect-rule: clean`).
#[test]
fn every_fixture_matches_its_expectation() {
    let mut checked = 0;
    for entry in fs::read_dir(fixtures_dir()).expect("fixtures directory") {
        let path = entry.expect("fixture entry").path();
        if path.extension().is_none_or(|e| e != "rs") {
            continue;
        }
        let source = fs::read_to_string(&path).expect("fixture readable");
        let (lint_as, expect) = fixture_header(&source);
        let findings = lint_source(&lint_as, &source);
        if expect == "clean" {
            assert!(
                findings.is_empty(),
                "clean fixture {} was flagged: {:?}",
                path.display(),
                findings
            );
        } else {
            assert!(
                findings.iter().any(|f| f.rule == expect),
                "fixture {} expected a `{}` finding, got: {:?}",
                path.display(),
                expect,
                findings
            );
        }
        checked += 1;
    }
    assert!(checked >= 13, "expected at least thirteen fixtures, found {checked}");
}

#[test]
fn lock_order_mutant_is_pinpointed() {
    let source = read_fixture("lock_order.rs");
    let findings = lint_source("crates/serve/src/mutant.rs", &source);
    let hits: Vec<&Finding> = findings.iter().filter(|f| f.rule == "lock-order").collect();
    assert_eq!(hits.len(), 1, "exactly the nested acquisition should fire: {findings:?}");
    // The finding sits on the `lock(&shared.sched)` line, names both locks
    // and spells out the declared hierarchy.
    assert_eq!(hits[0].line, 17);
    assert!(hits[0].message.contains("`sched`"), "message: {}", hits[0].message);
    assert!(hits[0].message.contains("`current`"), "message: {}", hits[0].message);
    assert!(hits[0].message.contains("sched < dynamic < current"), "message: {}", hits[0].message);
}

#[test]
fn reacquisition_is_reported_as_self_deadlock() {
    let source = read_fixture("lock_reacquire.rs");
    let findings = lint_source("crates/serve/src/mutant.rs", &source);
    let hits: Vec<&Finding> = findings.iter().filter(|f| f.rule == "lock-order").collect();
    assert_eq!(hits.len(), 1, "findings: {findings:?}");
    assert_eq!(hits[0].line, 11);
    assert!(hits[0].message.contains("re-acquisition"), "message: {}", hits[0].message);
}

#[test]
fn guard_blocking_mutant_names_guard_and_callee() {
    let source = read_fixture("guard_blocking.rs");
    let findings = lint_source("crates/serve/src/mutant.rs", &source);
    let hits: Vec<&Finding> =
        findings.iter().filter(|f| f.rule == "guard-across-blocking").collect();
    assert_eq!(hits.len(), 1, "findings: {findings:?}");
    assert_eq!(hits[0].line, 20);
    assert!(hits[0].message.contains("`conns`"), "message: {}", hits[0].message);
    assert!(hits[0].message.contains("write_all"), "message: {}", hits[0].message);
}

/// The allowlist is scoped to exact (file, lock, callee) triples: the
/// `server.rs` frame-write-under-`out` hold is declared, so the identical
/// code is clean there and a finding anywhere else.
#[test]
fn blocking_allowlist_is_file_scoped() {
    let source = "\
fn send(out: &Mutex<TcpStream>, payload: &[u8]) {
    let mut stream = lock(out);
    let _ = write_frame(&mut *stream, payload);
}
";
    let declared = lint_source("crates/serve/src/server.rs", source);
    assert!(declared.is_empty(), "allowlisted hold was flagged: {declared:?}");
    let undeclared = lint_source("crates/serve/src/mutant.rs", source);
    assert!(
        undeclared.iter().any(|f| f.rule == "guard-across-blocking" && f.line == 3),
        "undeclared hold escaped the lint: {undeclared:?}"
    );
}

#[test]
fn condvar_mutant_is_flagged_on_the_wait_line() {
    let source = read_fixture("condvar_if.rs");
    let findings = lint_source("crates/serve/src/mutant.rs", &source);
    let hits: Vec<&Finding> = findings.iter().filter(|f| f.rule == "condvar-wait-loop").collect();
    assert_eq!(hits.len(), 1, "findings: {findings:?}");
    assert_eq!(hits[0].line, 12);
}

/// The registry fixture pair seeds drift in both directions: a phantom
/// `order!` tag with no design entry, and a ghost design entry with no
/// `order!` site. The matched tag must stay silent.
#[test]
fn registry_drift_is_reported_in_both_directions() {
    let code = read_fixture("registry/drift.rs");
    let design = read_fixture("registry/design.md");
    let rel = "crates/core/src/parallel/drift.rs";
    let sites = registry::collect_order_sites(rel, &SourceFile::parse(&code));
    let tags: Vec<&str> = sites.iter().map(|s| s.tag.as_str()).collect();
    assert_eq!(tags, ["seen-exit-stripe", "phantom-site"]);

    let findings = registry::check_ordering_registry("design.md", &design, &sites);
    assert_eq!(findings.len(), 2, "findings: {findings:?}");
    let phantom = findings.iter().find(|f| f.message.contains("phantom-site")).expect("phantom");
    assert_eq!(phantom.path, rel);
    assert_eq!(phantom.line, 10);
    let ghost = findings.iter().find(|f| f.message.contains("ghost-site")).expect("ghost");
    assert_eq!(ghost.path, "design.md");
    assert_eq!(ghost.line, 12);
    assert!(
        !findings.iter().any(|f| f.message.contains("seen-exit-stripe")),
        "matched tag reported as drift: {findings:?}"
    );
    assert!(
        !findings.iter().any(|f| f.message.contains("not-an-ordering-site")),
        "bold code outside the ordering section leaked into the table: {findings:?}"
    );
}

/// Pins the `--report` JSON schema (see `xtask/src/report.rs` and
/// `xtask/README.md`): render the report of a seeded-findings fixture run,
/// then parse it with the workspace's independent JSON parser and check
/// every documented key.
#[test]
fn report_schema_round_trips_through_independent_parser() {
    use kbiplex::json::Json;

    let source = read_fixture("guard_blocking.rs");
    let findings = lint_source("crates/serve/src/mutant.rs", &source);
    assert!(!findings.is_empty(), "seeded fixture produced no findings");
    let run = LintRun { findings, files_scanned: 1, elapsed_ms: 7 };
    let rendered = report::render(&run);

    let doc = Json::parse(&rendered).expect("report is valid JSON");
    let get = |k: &str| doc.get(k).unwrap_or_else(|| panic!("report missing key `{k}`"));
    assert_eq!(get("version").as_u64("version").unwrap(), 1);
    assert_eq!(get("tool").as_str("tool").unwrap(), "xtask-lint");
    assert_eq!(get("files_scanned").as_u64("files_scanned").unwrap(), 1);
    assert_eq!(get("elapsed_ms").as_u64("elapsed_ms").unwrap(), 7);
    assert!(!get("clean").as_bool("clean").unwrap());
    let listed = get("findings").as_arr("findings").unwrap();
    assert_eq!(listed.len() as u64, get("finding_count").as_u64("finding_count").unwrap());
    let first = &listed[0];
    assert_eq!(
        first.get("path").expect("path").as_str("path").unwrap(),
        "crates/serve/src/mutant.rs"
    );
    assert_eq!(first.get("rule").expect("rule").as_str("rule").unwrap(), "guard-across-blocking");
    assert!(first.get("line").expect("line").as_u64("line").unwrap() > 0);
    assert!(first
        .get("message")
        .expect("message")
        .as_str("message")
        .unwrap()
        .contains("write_all"));

    // A clean run renders `clean: true` with an empty findings array.
    let clean = report::render(&LintRun { findings: Vec::new(), files_scanned: 3, elapsed_ms: 1 });
    let doc = Json::parse(&clean).expect("clean report is valid JSON");
    assert!(doc.get("clean").expect("clean").as_bool("clean").unwrap());
    assert!(doc.get("findings").expect("findings").as_arr("findings").unwrap().is_empty());
}

#[test]
fn raw_kernels_are_legal_inside_bigraph_only() {
    let source = read_fixture("kernel_bypass.rs");
    // The identical code is fine when it lives inside the kernel crate —
    // that is where the raw kernels are defined and benchmarked.
    let findings = lint_source("crates/bigraph/src/intersect.rs", &source);
    assert!(
        !findings.iter().any(|f| f.rule == "kernel-dispatch"),
        "bigraph-internal kernel call was flagged: {findings:?}"
    );
    // Outside it, every one of the four raw kernels is caught.
    for kernel in ["merge", "gallop", "chunked", "bitset"] {
        let call = format!("pub fn f(a: &[u32], b: &[u32]) -> usize {{\n    bigraph::intersect::{kernel}_intersection_len(a, b)\n}}\n");
        let findings = lint_source("crates/core/src/traversal.rs", &call);
        assert!(
            findings.iter().any(|f| f.rule == "kernel-dispatch" && f.line == 2),
            "raw {kernel} kernel call escaped the lint: {findings:?}"
        );
    }
}

#[test]
fn test_module_unwrap_is_exempt() {
    let source = read_fixture("unwrap_lib.rs");
    let findings = lint_source("crates/core/src/fixture.rs", &source);
    let unwraps: Vec<_> = findings.iter().filter(|f| f.rule == "no-unwrap").collect();
    assert_eq!(unwraps.len(), 1, "only the non-test unwrap should be flagged, got: {unwraps:?}");
    assert_eq!(unwraps[0].line, 5);
}

#[test]
fn conforming_parallel_code_passes() {
    let source = r#"use crate::sync::atomic::{AtomicUsize, Ordering};

pub fn bump(counter: &AtomicUsize) -> usize {
    // ordering: SeqCst — participates in the termination handshake; see
    // DESIGN.md "steal-pending".
    counter.fetch_add(1, Ordering::SeqCst)
}
"#;
    let findings = lint_source("crates/core/src/parallel/clean.rs", source);
    assert!(findings.is_empty(), "conforming code flagged: {findings:?}");
}

#[test]
fn missing_forbid_unsafe_is_flagged() {
    let root = workspace_root();
    // Every real crate root passes (covered by `workspace_is_clean`); a
    // root without the attribute must fail. lint_workspace drives the
    // check, so exercise it through a source that looks like a crate root.
    let findings = lint_source("crates/core/src/lib.rs", "pub fn f() {}\n");
    // lint_source does not own the crate-root rule; the workspace pass
    // does. Assert the real roots all carry the attribute instead.
    assert!(findings.is_empty());
    for member in ["crates/core", "crates/bigraph", "crates/cli", "vendor/modelsim", "xtask"] {
        for root_file in ["src/lib.rs", "src/main.rs"] {
            let path = root.join(member).join(root_file);
            if let Ok(source) = fs::read_to_string(&path) {
                assert!(
                    source.contains("#![forbid(unsafe_code)]"),
                    "{} is missing #![forbid(unsafe_code)]",
                    path.display()
                );
            }
        }
    }
}

#[test]
fn workspace_is_clean() {
    let root = workspace_root();
    assert!(root.join("Cargo.toml").exists(), "workspace root not found at {}", root.display());
    let run = lint_workspace(&root);
    assert!(run.files_scanned > 50, "suspiciously few files scanned: {}", run.files_scanned);
    assert!(
        run.findings.is_empty(),
        "workspace has lint findings:\n{}",
        run.findings.iter().map(|f| format!("  {f}\n")).collect::<String>()
    );
}
