//! Integration tests for the custom lint pass: every violation fixture
//! must be flagged with its expected rule, conforming code must pass, and
//! the real workspace must be clean.

use std::fs;
use std::path::Path;

use xtask::{lint_source, lint_workspace, workspace_root};

/// Parses the `// lint-as:` / `// expect-rule:` fixture header.
fn fixture_header(source: &str) -> (String, String) {
    let mut lint_as = None;
    let mut expect = None;
    for line in source.lines().take(4) {
        if let Some(rest) = line.strip_prefix("// lint-as: ") {
            lint_as = Some(rest.trim().to_string());
        }
        if let Some(rest) = line.strip_prefix("// expect-rule: ") {
            expect = Some(rest.trim().to_string());
        }
    }
    (
        lint_as.expect("fixture missing `// lint-as:` header"),
        expect.expect("fixture missing `// expect-rule:` header"),
    )
}

#[test]
fn every_fixture_is_flagged_with_its_rule() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut checked = 0;
    for entry in fs::read_dir(&dir).expect("fixtures directory") {
        let path = entry.expect("fixture entry").path();
        if path.extension().is_none_or(|e| e != "rs") {
            continue;
        }
        let source = fs::read_to_string(&path).expect("fixture readable");
        let (lint_as, expect) = fixture_header(&source);
        let findings = lint_source(&lint_as, &source);
        assert!(
            findings.iter().any(|f| f.rule == expect),
            "fixture {} expected a `{}` finding, got: {:?}",
            path.display(),
            expect,
            findings
        );
        checked += 1;
    }
    assert!(checked >= 6, "expected at least six fixtures, found {checked}");
}

#[test]
fn raw_kernels_are_legal_inside_bigraph_only() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let source = fs::read_to_string(dir.join("kernel_bypass.rs")).expect("fixture readable");
    // The identical code is fine when it lives inside the kernel crate —
    // that is where the raw kernels are defined and benchmarked.
    let findings = lint_source("crates/bigraph/src/intersect.rs", &source);
    assert!(
        !findings.iter().any(|f| f.rule == "kernel-dispatch"),
        "bigraph-internal kernel call was flagged: {findings:?}"
    );
    // Outside it, every one of the four raw kernels is caught.
    for kernel in ["merge", "gallop", "chunked", "bitset"] {
        let call = format!("pub fn f(a: &[u32], b: &[u32]) -> usize {{\n    bigraph::intersect::{kernel}_intersection_len(a, b)\n}}\n");
        let findings = lint_source("crates/core/src/traversal.rs", &call);
        assert!(
            findings.iter().any(|f| f.rule == "kernel-dispatch" && f.line == 2),
            "raw {kernel} kernel call escaped the lint: {findings:?}"
        );
    }
}

#[test]
fn test_module_unwrap_is_exempt() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let source = fs::read_to_string(dir.join("unwrap_lib.rs")).expect("fixture readable");
    let findings = lint_source("crates/core/src/fixture.rs", &source);
    let unwraps: Vec<_> = findings.iter().filter(|f| f.rule == "no-unwrap").collect();
    assert_eq!(unwraps.len(), 1, "only the non-test unwrap should be flagged, got: {unwraps:?}");
    assert_eq!(unwraps[0].line, 5);
}

#[test]
fn conforming_parallel_code_passes() {
    let source = r#"use crate::sync::atomic::{AtomicUsize, Ordering};

pub fn bump(counter: &AtomicUsize) -> usize {
    // ordering: SeqCst — participates in the termination handshake; see
    // DESIGN.md "steal-pending".
    counter.fetch_add(1, Ordering::SeqCst)
}
"#;
    let findings = lint_source("crates/core/src/parallel/clean.rs", source);
    assert!(findings.is_empty(), "conforming code flagged: {findings:?}");
}

#[test]
fn missing_forbid_unsafe_is_flagged() {
    let root = workspace_root();
    // Every real crate root passes (covered by `workspace_is_clean`); a
    // root without the attribute must fail. lint_workspace drives the
    // check, so exercise it through a source that looks like a crate root.
    let findings = lint_source("crates/core/src/lib.rs", "pub fn f() {}\n");
    // lint_source does not own the crate-root rule; the workspace pass
    // does. Assert the real roots all carry the attribute instead.
    assert!(findings.is_empty());
    for member in ["crates/core", "crates/bigraph", "crates/cli", "vendor/modelsim", "xtask"] {
        for root_file in ["src/lib.rs", "src/main.rs"] {
            let path = root.join(member).join(root_file);
            if let Ok(source) = fs::read_to_string(&path) {
                assert!(
                    source.contains("#![forbid(unsafe_code)]"),
                    "{} is missing #![forbid(unsafe_code)]",
                    path.display()
                );
            }
        }
    }
}

#[test]
fn workspace_is_clean() {
    let root = workspace_root();
    assert!(root.join("Cargo.toml").exists(), "workspace root not found at {}", root.display());
    let (findings, scanned) = lint_workspace(&root);
    assert!(scanned > 50, "suspiciously few files scanned: {scanned}");
    assert!(
        findings.is_empty(),
        "workspace has lint findings:\n{}",
        findings.iter().map(|f| format!("  {f}\n")).collect::<String>()
    );
}
